/** @file Unit tests for context snapshots and maskable hashing. */

#include <gtest/gtest.h>

#include <set>

#include "trace/context.h"

namespace csp::trace {
namespace {

ContextSnapshot
sample()
{
    ContextSnapshot ctx;
    ctx.set(Attr::IP, 0x400010);
    ctx.set(Attr::TypeInfo, 3);
    ctx.set(Attr::LinkOffset, 8);
    ctx.set(Attr::RefForm, 2);
    ctx.set(Attr::PrevData, 0xdead);
    ctx.set(Attr::AddrHistory, 0x123);
    ctx.set(Attr::BranchHistory, 0xa5a5);
    ctx.set(Attr::RegData, 42);
    return ctx;
}

TEST(ContextSnapshot, GetSetRoundTrip)
{
    ContextSnapshot ctx;
    ctx.set(Attr::RegData, 99);
    EXPECT_EQ(ctx.get(Attr::RegData), 99u);
    EXPECT_EQ(ctx.get(Attr::IP), 0u);
}

TEST(ContextSnapshot, HashIsDeterministic)
{
    const ContextSnapshot a = sample();
    const ContextSnapshot b = sample();
    EXPECT_EQ(a.hash(kAllAttrs, 19), b.hash(kAllAttrs, 19));
}

TEST(ContextSnapshot, HashFitsBitWidth)
{
    const ContextSnapshot ctx = sample();
    EXPECT_LT(ctx.hash(kAllAttrs, 16), 1u << 16);
    EXPECT_LT(ctx.hash(kAllAttrs, 19), 1u << 19);
}

TEST(ContextSnapshot, InactiveAttributesDoNotAffectHash)
{
    ContextSnapshot a = sample();
    ContextSnapshot b = sample();
    b.set(Attr::BranchHistory, 0x1111); // differs, but masked out
    const AttrMask mask =
        attrBit(Attr::IP) | attrBit(Attr::TypeInfo);
    EXPECT_EQ(a.hash(mask, 19), b.hash(mask, 19));
    EXPECT_NE(a.hash(kAllAttrs, 19), b.hash(kAllAttrs, 19));
}

TEST(ContextSnapshot, ActiveAttributeChangesHash)
{
    ContextSnapshot a = sample();
    ContextSnapshot b = sample();
    b.set(Attr::IP, 0x400020);
    const AttrMask mask = attrBit(Attr::IP);
    EXPECT_NE(a.hash(mask, 19), b.hash(mask, 19));
}

TEST(ContextSnapshot, SameValueDifferentAttributeHashesDifferently)
{
    ContextSnapshot a;
    a.set(Attr::IP, 7);
    ContextSnapshot b;
    b.set(Attr::TypeInfo, 7);
    EXPECT_NE(a.hash(kAllAttrs, 19), b.hash(kAllAttrs, 19));
}

TEST(ContextSnapshot, HashSpreadsOverBuckets)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t ip = 0; ip < 500; ++ip) {
        ContextSnapshot ctx;
        ctx.set(Attr::IP, 0x400000 + ip * 4);
        seen.insert(ctx.hash(kAllAttrs, 16));
    }
    EXPECT_GT(seen.size(), 490u);
}

TEST(ContextSnapshot, DescribeNamesEveryAttribute)
{
    const std::string text = sample().describe();
    for (unsigned i = 0; i < kNumAttrs; ++i) {
        EXPECT_NE(text.find(attrName(static_cast<Attr>(i))),
                  std::string::npos);
    }
}

TEST(ContextAttrs, MaskConstantsConsistent)
{
    EXPECT_EQ(kAllAttrs, (1u << kNumAttrs) - 1);
    // Hardware mask excludes exactly the three compiler attributes.
    EXPECT_EQ(kHardwareAttrs & attrBit(Attr::TypeInfo), 0);
    EXPECT_EQ(kHardwareAttrs & attrBit(Attr::LinkOffset), 0);
    EXPECT_EQ(kHardwareAttrs & attrBit(Attr::RefForm), 0);
    EXPECT_NE(kHardwareAttrs & attrBit(Attr::IP), 0);
    EXPECT_NE(kHardwareAttrs & attrBit(Attr::BranchHistory), 0);
}

TEST(ContextAttrs, NamesAreUnique)
{
    std::set<std::string> names;
    for (unsigned i = 0; i < kNumAttrs; ++i)
        names.insert(attrName(static_cast<Attr>(i)));
    EXPECT_EQ(names.size(), kNumAttrs);
}

} // namespace
} // namespace csp::trace
