/** @file End-to-end learning tests for the context-based prefetcher. */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/context/context_prefetcher.h"
#include "trace/hw_state.h"

namespace csp::prefetch::ctx {
namespace {

/**
 * Drives the prefetcher with a synthetic access stream and counts how
 * many of its real predictions were later demanded in the positive
 * reward window — a self-contained proxy for coverage.
 */
class StreamDriver
{
  public:
    explicit StreamDriver(ContextPrefetcher &pf) : pf_(pf) {}

    void
    access(Addr pc, Addr vaddr, const hints::Hint &hint = {},
           std::uint64_t loaded = 0, bool dep = false)
    {
        trace::TraceRecord rec;
        rec.kind = trace::InstKind::Load;
        rec.pc = pc;
        rec.vaddr = vaddr;
        rec.hint = hint;
        rec.loaded_value = loaded;
        rec.dep_on_prev_load = dep;
        const trace::ContextSnapshot ctx = hw_.capture(rec);
        AccessInfo info;
        info.seq = seq_;
        info.pc = pc;
        info.vaddr = vaddr;
        info.line_addr = alignDown(vaddr, 64);
        info.free_l1_mshrs = 4;
        info.context = &ctx;
        out_.clear();
        pf_.observe(info, out_);
        for (const PrefetchRequest &req : out_) {
            if (!req.shadow)
                real_.push_back({req.addr, seq_});
        }
        // Score outstanding real predictions against this access.
        for (auto &pending : real_) {
            if (!pending.done &&
                pending.addr == alignDown(vaddr, 64)) {
                pending.done = true;
                const auto depth =
                    static_cast<unsigned>(seq_ - pending.seq);
                if (depth >= 18 && depth <= 50)
                    ++useful_;
            }
        }
        hw_.update(rec);
        ++seq_;
    }

    std::uint64_t usefulReals() const { return useful_; }
    std::uint64_t totalReals() const { return real_.size(); }

  private:
    struct Pending
    {
        Addr addr;
        AccessSeq seq;
        bool done = false;
    };

    ContextPrefetcher &pf_;
    trace::HwContextTracker hw_;
    AccessSeq seq_ = 0;
    std::vector<PrefetchRequest> out_;
    std::vector<Pending> real_;
    std::uint64_t useful_ = 0;
};

TEST(ContextEndToEnd, LearnsStridedStream)
{
    ContextPrefetcherConfig config;
    ContextPrefetcher pf(config, 1);
    StreamDriver driver(pf);
    for (int i = 0; i < 20000; ++i)
        driver.access(0x400, 0x100000 + i * 64);
    EXPECT_GT(pf.stats().real_predictions, 1000u);
    EXPECT_GT(driver.usefulReals(), driver.totalReals() / 2);
    EXPECT_GT(pf.policy().accuracy(), 0.5);
}

TEST(ContextEndToEnd, LearnsRecurringScatteredTraversal)
{
    // A fixed pseudo-random traversal over 256 blocks, repeated: no
    // spatial regularity, pure semantic recurrence.
    ContextPrefetcherConfig config;
    ContextPrefetcher pf(config, 1);
    StreamDriver driver(pf);
    std::vector<Addr> path;
    Rng rng(9);
    for (int i = 0; i < 256; ++i)
        path.push_back(0x100000 + rng.below(120) * 64);
    const hints::Hint hint{1, 0, hints::RefForm::Arrow};
    for (int rep = 0; rep < 80; ++rep) {
        for (std::size_t i = 0; i < path.size(); ++i) {
            const Addr next = path[(i + 1) % path.size()];
            driver.access(0x400, path[i], hint, next, true);
        }
    }
    EXPECT_GT(pf.policy().accuracy(), 0.3);
    EXPECT_GT(driver.usefulReals(), 1000u);
}

TEST(ContextEndToEnd, RandomStreamStaysThrottled)
{
    // Unlearnable noise: accuracy stays on the floor, so the degree
    // throttle pins the prefetcher at one candidate per access (the
    // paper's dispatch policy relies on the memory system to refuse
    // the rest under pressure).
    ContextPrefetcherConfig config;
    ContextPrefetcher pf(config, 1);
    StreamDriver driver(pf);
    Rng rng(5);
    for (int i = 0; i < 30000; ++i)
        driver.access(0x400, 0x100000 + rng.below(1 << 22));
    EXPECT_LT(pf.policy().accuracy(), 0.1);
    EXPECT_LE(pf.stats().real_predictions, pf.stats().lookups);
}

TEST(ContextEndToEnd, ConservativeThresholdSilencesRandomStream)
{
    // With the conservative dispatch threshold, unvetted links never
    // dispatch at all on pure noise.
    ContextPrefetcherConfig config;
    config.real_score_threshold = 6;
    ContextPrefetcher pf(config, 1);
    StreamDriver driver(pf);
    Rng rng(5);
    for (int i = 0; i < 30000; ++i)
        driver.access(0x400, 0x100000 + rng.below(1 << 22));
    EXPECT_LT(pf.stats().real_predictions,
              pf.stats().lookups / 5);
}

TEST(ContextEndToEnd, ShadowPrefetchesPrecedeRealOnes)
{
    // With a conservative dispatch threshold, cold links explore as
    // shadows first; promotions need rewards.
    ContextPrefetcherConfig config;
    config.real_score_threshold = 6;
    ContextPrefetcher pf(config, 1);
    StreamDriver driver(pf);
    for (int i = 0; i < 40; ++i)
        driver.access(0x400, 0x100000 + i * 64);
    EXPECT_GT(pf.stats().shadow_predictions, 0u);
    EXPECT_EQ(pf.stats().real_predictions, 0u);
}

TEST(ContextEndToEnd, HitDepthsConcentrateInWindow)
{
    ContextPrefetcherConfig config;
    ContextPrefetcher pf(config, 1);
    StreamDriver driver(pf);
    for (int i = 0; i < 20000; ++i)
        driver.access(0x400, 0x100000 + i * 64);
    const Histogram *depths = pf.hitDepths();
    ASSERT_NE(depths, nullptr);
    ASSERT_GT(depths->count(), 100u);
    // The mass below the window start must be a minority.
    EXPECT_LT(depths->cdfAt(17), 0.5);
}

TEST(ContextEndToEnd, DeltaOverflowsAreCounted)
{
    ContextPrefetcherConfig config;
    ContextPrefetcher pf(config, 1);
    StreamDriver driver(pf);
    Rng rng(5);
    // Jumps of many MB: none fit the 1-byte delta encoding.
    for (int i = 0; i < 2000; ++i)
        driver.access(0x400, 0x100000 + rng.below(1024) * (1 << 20));
    EXPECT_GT(pf.stats().delta_overflows, 0u);
    EXPECT_EQ(pf.stats().associations, 0u);
}

TEST(ContextEndToEnd, FinishFlushesPrefetchQueue)
{
    ContextPrefetcherConfig config;
    ContextPrefetcher pf(config, 1);
    StreamDriver driver(pf);
    for (int i = 0; i < 500; ++i)
        driver.access(0x400, 0x100000 + i * 64);
    const std::uint64_t before = pf.stats().pq_expiries;
    pf.finish();
    EXPECT_GT(pf.stats().pq_expiries, before);
}

TEST(ContextEndToEnd, DisablingExplorationStopsShadowExploration)
{
    ContextPrefetcherConfig config;
    ContextFeatureToggles toggles;
    toggles.exploration = false;
    ContextPrefetcher pf(config, 1, toggles);
    StreamDriver driver(pf);
    for (int i = 0; i < 5000; ++i)
        driver.access(0x400, 0x100000 + i * 64);
    EXPECT_EQ(pf.stats().explorations, 0u);
}

TEST(ContextEndToEnd, OverloadEventsFireOnDiversePatterns)
{
    ContextPrefetcherConfig config;
    ContextPrefetcher pf(config, 1);
    StreamDriver driver(pf);
    Rng rng(3);
    // One IP, many interleaved strided walks: a single reduced context
    // accumulates far more candidate deltas than it can hold.
    for (int i = 0; i < 20000; ++i) {
        const Addr base = 0x100000 + rng.below(16) * 0x40000;
        driver.access(0x400, base + (i % 64) * 64);
    }
    EXPECT_GT(pf.stats().overload_events, 0u);
}

} // namespace
} // namespace csp::prefetch::ctx
