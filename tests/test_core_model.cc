/** @file Unit tests for the OoO core timing model. */

#include <gtest/gtest.h>

#include "cpu/core_model.h"

namespace csp::cpu {
namespace {

CoreConfig
defaultCore()
{
    return CoreConfig{};
}

TEST(CoreModel, PureComputeRunsAtFetchWidth)
{
    CoreModel core(defaultCore());
    core.computeBurst(4000);
    // 4-wide: 4000 instructions in ~1000 cycles (+pipeline slack).
    EXPECT_NEAR(core.ipc(), 4.0, 0.1);
}

TEST(CoreModel, FetchWidthBoundsDispatchPerCycle)
{
    CoreConfig config = defaultCore();
    config.fetch_width = 2;
    CoreModel core(config);
    core.computeBurst(1000);
    EXPECT_NEAR(core.ipc(), 2.0, 0.1);
}

TEST(CoreModel, DependentLoadsSerialise)
{
    CoreModel core(defaultCore());
    // 100 dependent loads, each with 10-cycle latency.
    for (int i = 0; i < 100; ++i) {
        const Cycle dispatch = core.dispatchNext();
        const Cycle issue = core.loadIssueAt(dispatch, true);
        core.completeLoad(issue + 10);
    }
    // Serialised: ~10 cycles per load.
    EXPECT_GE(core.elapsed(), 990u);
}

TEST(CoreModel, IndependentLoadsOverlap)
{
    CoreModel core(defaultCore());
    for (int i = 0; i < 100; ++i) {
        const Cycle dispatch = core.dispatchNext();
        const Cycle issue = core.loadIssueAt(dispatch, false);
        core.completeLoad(issue + 10);
    }
    // Overlapped: latency hidden behind the fetch stream.
    EXPECT_LT(core.elapsed(), 200u);
}

TEST(CoreModel, RobFullGatesDispatch)
{
    CoreConfig config = defaultCore();
    config.rob_entries = 8;
    CoreModel core(config);
    // One very long load, then compute: the compute stream stalls when
    // the tiny ROB fills behind the load.
    const Cycle dispatch = core.dispatchNext();
    core.completeLoad(core.loadIssueAt(dispatch, false) + 1000);
    core.computeBurst(100);
    EXPECT_GE(core.elapsed(), 1000u);
}

TEST(CoreModel, LargeRobHidesLongLatency)
{
    CoreModel core(defaultCore()); // 192-entry ROB
    const Cycle dispatch = core.dispatchNext();
    core.completeLoad(core.loadIssueAt(dispatch, false) + 100);
    core.computeBurst(150); // fits in the ROB alongside the load
    // Compute retires behind the load but dispatch never stalls:
    // elapsed is the load latency, not load + compute.
    EXPECT_LE(core.elapsed(), 140u);
}

TEST(CoreModel, RetirementIsInOrder)
{
    CoreModel core(defaultCore());
    const Cycle d1 = core.dispatchNext();
    core.completeLoad(core.loadIssueAt(d1, false) + 500);
    const Cycle d2 = core.dispatchNext();
    core.complete(d2 + 1);
    // The younger 1-cycle instruction cannot retire before the load:
    // elapsed reflects the load.
    EXPECT_GE(core.elapsed(), 500u);
}

TEST(CoreModel, LoadQueueBoundsOutstandingLoads)
{
    CoreConfig config = defaultCore();
    config.lq_entries = 2;
    config.rob_entries = 1000;
    CoreModel core(config);
    Cycle last_issue = 0;
    for (int i = 0; i < 10; ++i) {
        const Cycle dispatch = core.dispatchNext();
        const Cycle issue = core.loadIssueAt(dispatch, false);
        core.completeLoad(issue + 100);
        last_issue = issue;
    }
    // Only 2 loads in flight: the 10th issues around (10-2)/2*100.
    EXPECT_GE(last_issue, 300u);
}

TEST(CoreModel, InstructionsCounted)
{
    CoreModel core(defaultCore());
    core.computeBurst(10);
    core.dispatchNext();
    core.complete(5);
    EXPECT_EQ(core.instructions(), 11u);
}

TEST(CoreModel, ResetRestoresInitialState)
{
    CoreModel core(defaultCore());
    core.computeBurst(100);
    core.reset();
    EXPECT_EQ(core.instructions(), 0u);
    EXPECT_EQ(core.elapsed(), 0u);
    core.computeBurst(400);
    EXPECT_NEAR(core.ipc(), 4.0, 0.1);
}

TEST(CoreModel, IpcZeroBeforeAnyWork)
{
    CoreModel core(defaultCore());
    EXPECT_DOUBLE_EQ(core.ipc(), 0.0);
}

} // namespace
} // namespace csp::cpu
