/**
 * @file
 * Regression-observatory tests: JSON/CSV flattening, the
 * correctness/timing/provenance classification, and the diff + exit
 * semantics cspdiff builds CI gates from — including golden canned
 * run documents exercising every verdict.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "diff/csp_diff.h"

namespace csp::diff {
namespace {

FlatDoc
parseJson(const std::string &text)
{
    FlatDoc doc;
    std::string error;
    EXPECT_TRUE(parseJsonFlat(text, doc, &error)) << error;
    return doc;
}

TEST(JsonFlatten, NestedObjectsJoinWithDots)
{
    const FlatDoc doc =
        parseJson(R"({"a":{"b":{"c":3}},"d":"x"})");
    const FlatValue *c = doc.find("a.b.c");
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->is_number);
    EXPECT_EQ(c->number, 3.0);
    const FlatValue *d = doc.find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_FALSE(d->is_number);
    EXPECT_EQ(d->text, "x");
}

TEST(JsonFlatten, ArraysIndexAsSegments)
{
    const FlatDoc doc = parseJson(R"({"v":[10,20,{"w":30}]})");
    ASSERT_NE(doc.find("v.0"), nullptr);
    EXPECT_EQ(doc.find("v.1")->number, 20.0);
    EXPECT_EQ(doc.find("v.2.w")->number, 30.0);
}

TEST(JsonFlatten, EscapesAndNumbers)
{
    const FlatDoc doc = parseJson(
        R"({"s":"a\"b\\c\n","neg":-2.5e-1,"t":true,"n":null})");
    EXPECT_EQ(doc.find("s")->text, "a\"b\\c\n");
    EXPECT_DOUBLE_EQ(doc.find("neg")->number, -0.25);
    EXPECT_EQ(doc.find("t")->text, "true");
    EXPECT_EQ(doc.find("n")->text, "null");
}

TEST(JsonFlatten, RejectsMalformed)
{
    FlatDoc doc;
    std::string error;
    EXPECT_FALSE(parseJsonFlat("{\"a\":", doc, &error));
    EXPECT_FALSE(error.empty());
}

TEST(CsvFlatten, CellsKeyedByRowAndHeader)
{
    FlatDoc doc;
    std::string error;
    ASSERT_TRUE(parseCsvFlat(
        "workload,ipc,mpki\nmcf,0.5,12\nbst,0.9,3\n", doc, &error))
        << error;
    EXPECT_DOUBLE_EQ(doc.find("mcf.ipc")->number, 0.5);
    EXPECT_DOUBLE_EQ(doc.find("bst.mpki")->number, 3.0);
}

TEST(CsvFlatten, DuplicateRowKeysGetSuffixes)
{
    FlatDoc doc;
    std::string error;
    ASSERT_TRUE(parseCsvFlat("k,v\nrow,1\nrow,2\n", doc, &error))
        << error;
    EXPECT_DOUBLE_EQ(doc.find("row.v")->number, 1.0);
    EXPECT_DOUBLE_EQ(doc.find("row#2.v")->number, 2.0);
}

TEST(CsvFlatten, ManifestCommentBecomesProvenanceEntries)
{
    FlatDoc doc;
    std::string error;
    ASSERT_TRUE(parseCsvFlat("# plain comment is skipped\n"
                             "# manifest {\"tool\":\"cspsim\","
                             "\"seed\":7}\n"
                             "k,v\nrow,1\n",
                             doc, &error))
        << error;
    ASSERT_NE(doc.find("manifest.tool"), nullptr);
    EXPECT_EQ(doc.find("manifest.tool")->text, "cspsim");
    EXPECT_DOUBLE_EQ(doc.find("manifest.seed")->number, 7.0);
}

TEST(ParseFlat, DispatchesOnFirstCharacter)
{
    FlatDoc json_doc;
    FlatDoc csv_doc;
    std::string error;
    ASSERT_TRUE(parseFlat("{\"a\":1}", json_doc, &error)) << error;
    ASSERT_TRUE(parseFlat("k,v\nrow,1\n", csv_doc, &error)) << error;
    EXPECT_NE(json_doc.find("a"), nullptr);
    EXPECT_NE(csv_doc.find("row.v"), nullptr);
}

TEST(Classify, CorrectnessIsTheDefault)
{
    EXPECT_EQ(classify("sim.instructions"), StatClass::Correctness);
    EXPECT_EQ(classify("mem.l1.demand_misses"),
              StatClass::Correctness);
    EXPECT_EQ(classify("context.cst.score.mean"),
              StatClass::Correctness);
}

TEST(Classify, SegmentMatchingNeverSubstringMatches)
{
    // "instructions" contains "ns"; "latency.p50" is a latency *count*
    // histogram edge measured in cycles, not wall-clock.
    EXPECT_EQ(classify("stats.sim.instructions"),
              StatClass::Correctness);
    EXPECT_EQ(classify("mem.dram.latency.p50"),
              StatClass::Correctness);
}

TEST(Classify, TimingNamesAreBanded)
{
    EXPECT_EQ(classify("prof.replay.ns"), StatClass::Timing);
    EXPECT_EQ(classify("prof.mem.access.ns_per_call"),
              StatClass::Timing);
    EXPECT_EQ(classify("stats.prof.replay.calls"), StatClass::Timing);
    EXPECT_EQ(classify("bench.replay.insts_per_sec"),
              StatClass::Timing);
    EXPECT_EQ(classify("run.sim_seconds"), StatClass::Timing);
    // Bench-scorecard gauges: the ns_per group prefix and the
    // disabled-path rate ratios are wall-clock derived.
    EXPECT_EQ(classify("observe_ns_per_access.context"),
              StatClass::Timing);
    EXPECT_EQ(classify("profile_disabled_rate"), StatClass::Timing);
}

TEST(Classify, ManifestIsProvenance)
{
    EXPECT_EQ(classify("manifest.git_sha"), StatClass::Provenance);
    EXPECT_EQ(classify("manifest.insts_per_sec"),
              StatClass::Provenance);
}

TEST(Classify, LearningSubtreeIsObserverConditional)
{
    EXPECT_EQ(classify("stats.learn.policy.epsilon"),
              StatClass::Learning);
    EXPECT_EQ(classify("learn.cst.probes"), StatClass::Learning);
    EXPECT_EQ(classify("snapshots.0.accuracy"), StatClass::Learning);
    // "learned" is not the "learn" segment.
    EXPECT_EQ(classify("sim.learned_counts"), StatClass::Correctness);
}

TEST(Classify, MemObservatorySubtreeIsObserverConditional)
{
    EXPECT_EQ(classify("mem.class.l1.compulsory"), StatClass::Memory);
    EXPECT_EQ(classify("stats.mem.class.l2.pollution"),
              StatClass::Memory);
    EXPECT_EQ(classify("mem.reuse.l1.p50"), StatClass::Memory);
    EXPECT_EQ(classify("mem.shadow.compactions"), StatClass::Memory);
    EXPECT_EQ(classify("mem.pollution.l2.attributed"),
              StatClass::Memory);
    EXPECT_EQ(classify("mem.sets.l1.evictions"), StatClass::Memory);
    EXPECT_EQ(classify("mem.timeline.dram_backlog"), StatClass::Memory);
    // The hierarchy's own correctness counters live under "mem" too:
    // only the observatory subtrees are observer-conditional.
    EXPECT_EQ(classify("mem.l1.demand_misses"), StatClass::Correctness);
    EXPECT_EQ(classify("mem.dram.accesses"), StatClass::Correctness);
    // "classes" outside a "mem" prefix stays a correctness stat (the
    // Figure 9 access-class counters).
    EXPECT_EQ(classify("sim.classes.shorter_wait"),
              StatClass::Correctness);
}

TEST(DiffDocs, MissingMemObservatoryKeyIsNotedNotFailed)
{
    // The mem.class.* subtree exists only when the mem observer was
    // attached: an observed run vs an unobserved baseline stays clean.
    const FlatDoc a = parseJson(R"({"sim":{"cycles":1}})");
    const FlatDoc b = parseJson(
        R"({"sim":{"cycles":1},
            "mem":{"class":{"l1":{"compulsory":5}}}})");
    const DiffResult result = diffDocs(a, b);
    EXPECT_EQ(result.exitCode(), 0);
    EXPECT_EQ(result.only_b, 1u);
}

TEST(DiffDocs, MemObservatoryValueDriftFails)
{
    // When both runs carried the observer, taxonomy drift is a
    // determinism break, exactly like a correctness counter.
    const FlatDoc a = parseJson(
        R"({"mem":{"class":{"l1":{"pollution":40}}}})");
    const FlatDoc b = parseJson(
        R"({"mem":{"class":{"l1":{"pollution":41}}}})");
    const DiffResult result = diffDocs(a, b);
    EXPECT_EQ(result.exitCode(), 1);
    EXPECT_TRUE(result.correctness_drift);
}

TEST(DiffDocs, MissingLearningKeyIsNotedNotFailed)
{
    // The learn.* subtree exists only when the learning observer was
    // attached: comparing an observed run against an unobserved
    // baseline must stay clean...
    const FlatDoc a = parseJson(R"({"sim":{"cycles":1}})");
    const FlatDoc b = parseJson(
        R"({"sim":{"cycles":1},"learn":{"cst":{"probes":9}}})");
    const DiffResult result = diffDocs(a, b);
    EXPECT_EQ(result.exitCode(), 0);
    EXPECT_EQ(result.only_b, 1u);
}

TEST(DiffDocs, LearningValueDriftFails)
{
    // ...but when both runs recorded learning state, any drift is a
    // determinism break, exactly like a correctness counter.
    const FlatDoc a = parseJson(
        R"({"learn":{"policy":{"selections":100}}})");
    const FlatDoc b = parseJson(
        R"({"learn":{"policy":{"selections":101}}})");
    const DiffResult result = diffDocs(a, b);
    EXPECT_EQ(result.exitCode(), 1);
    EXPECT_TRUE(result.correctness_drift);
}

// Golden canned run documents: a baseline, an identical rerun with
// only wall-clock noise, a correctness drift, and a throughput
// regression.
const char *const kBaseline = R"({
  "manifest":{"config_digest":"aabb","trace_digest":"ccdd","seed":1,
              "insts_per_sec":1000000.0},
  "stats":{"sim":{"instructions":5000,"cycles":9000,"ipc":0.5555},
           "prof":{"replay":{"ns":1000000}}}})";

const char *const kRerun = R"({
  "manifest":{"config_digest":"aabb","trace_digest":"ccdd","seed":1,
              "insts_per_sec":900000.0},
  "stats":{"sim":{"instructions":5000,"cycles":9000,"ipc":0.5555},
           "prof":{"replay":{"ns":1030000}}}})";

const char *const kDrift = R"({
  "manifest":{"config_digest":"aabb","trace_digest":"ccdd","seed":1,
              "insts_per_sec":1000000.0},
  "stats":{"sim":{"instructions":5000,"cycles":9100,"ipc":0.5494},
           "prof":{"replay":{"ns":1000000}}}})";

const char *const kSlow = R"({
  "manifest":{"config_digest":"aabb","trace_digest":"ccdd","seed":1,
              "insts_per_sec":1000000.0},
  "stats":{"sim":{"instructions":5000,"cycles":9000,"ipc":0.5555},
           "prof":{"replay":{"ns":1300000}}}})";

TEST(DiffDocs, IdenticalRerunIsClean)
{
    const DiffResult result =
        diffDocs(parseJson(kBaseline), parseJson(kRerun));
    EXPECT_EQ(result.exitCode(), 0);
    EXPECT_FALSE(result.correctness_drift);
    // prof.replay.ns moved 3% — inside the 5% band.
    EXPECT_FALSE(result.timing_exceeded);
}

TEST(DiffDocs, CorrectnessDriftExitsOne)
{
    const DiffResult result =
        diffDocs(parseJson(kBaseline), parseJson(kDrift));
    EXPECT_EQ(result.exitCode(), 1);
    EXPECT_TRUE(result.correctness_drift);
    // The drifting stat is ranked first and marked failing.
    ASSERT_FALSE(result.findings.empty());
    EXPECT_TRUE(result.findings.front().failing);
    EXPECT_EQ(result.findings.front().cls, StatClass::Correctness);
}

TEST(DiffDocs, TimingBandExceededExitsTwo)
{
    const DiffResult result =
        diffDocs(parseJson(kBaseline), parseJson(kSlow));
    EXPECT_EQ(result.exitCode(), 2);
    EXPECT_TRUE(result.timing_exceeded);
    EXPECT_FALSE(result.correctness_drift);
}

TEST(DiffDocs, LaxTimingReportsButPasses)
{
    DiffOptions options;
    options.fail_on_timing = false;
    const DiffResult result =
        diffDocs(parseJson(kBaseline), parseJson(kSlow), options);
    EXPECT_EQ(result.exitCode(), 0);
    EXPECT_FALSE(result.timing_exceeded);
}

TEST(DiffDocs, FloatToleranceForgivesLastUlpNoise)
{
    const FlatDoc a = parseJson(R"({"sim":{"ipc":0.555500000001}})");
    const FlatDoc b = parseJson(R"({"sim":{"ipc":0.555500000002}})");
    EXPECT_EQ(diffDocs(a, b).exitCode(), 1);
    DiffOptions options;
    options.float_tolerance = 1e-6;
    EXPECT_EQ(diffDocs(a, b, options).exitCode(), 0);
}

TEST(DiffDocs, IntegersAreAlwaysExact)
{
    // Integral correctness stats never get the float tolerance.
    const FlatDoc a = parseJson(R"({"sim":{"cycles":1000000000}})");
    const FlatDoc b = parseJson(R"({"sim":{"cycles":1000000001}})");
    DiffOptions options;
    options.float_tolerance = 1e-6;
    EXPECT_EQ(diffDocs(a, b, options).exitCode(), 1);
}

TEST(DiffDocs, MissingCorrectnessKeyIsDrift)
{
    const FlatDoc a =
        parseJson(R"({"sim":{"cycles":1,"extra":2}})");
    const FlatDoc b = parseJson(R"({"sim":{"cycles":1}})");
    const DiffResult result = diffDocs(a, b);
    EXPECT_EQ(result.exitCode(), 1);
    EXPECT_EQ(result.only_a, 1u);
}

TEST(DiffDocs, MissingTimingKeyIsNotedNotFailed)
{
    const FlatDoc a = parseJson(
        R"({"sim":{"cycles":1},"prof":{"replay":{"ns":5}}})");
    const FlatDoc b = parseJson(R"({"sim":{"cycles":1}})");
    EXPECT_EQ(diffDocs(a, b).exitCode(), 0);
}

TEST(DiffDocs, RequireSameInputFailsOnSeedMismatch)
{
    const FlatDoc a = parseJson(
        R"({"manifest":{"seed":1},"sim":{"cycles":1}})");
    const FlatDoc b = parseJson(
        R"({"manifest":{"seed":2},"sim":{"cycles":1}})");
    EXPECT_EQ(diffDocs(a, b).exitCode(), 0);
    EXPECT_TRUE(diffDocs(a, b).provenance_mismatch);
    DiffOptions options;
    options.require_same_input = true;
    EXPECT_EQ(diffDocs(a, b, options).exitCode(), 1);
}

TEST(DiffDocs, ReportListsVerdictLine)
{
    const DiffResult result =
        diffDocs(parseJson(kBaseline), parseJson(kDrift));
    std::ostringstream out;
    result.writeReport(out);
    EXPECT_NE(out.str().find("FAIL"), std::string::npos);
    EXPECT_NE(out.str().find("CORRECTNESS DRIFT (exit 1)"),
              std::string::npos);
}

TEST(DiffDocs, IntervalCsvDocumentsDiffLikeJson)
{
    FlatDoc a;
    FlatDoc b;
    std::string error;
    ASSERT_TRUE(parseFlat("# manifest {\"seed\":1}\n"
                          "instructions,sim.ipc\n1000,0.5\n",
                          a, &error))
        << error;
    ASSERT_TRUE(parseFlat("# manifest {\"seed\":1}\n"
                          "instructions,sim.ipc\n1000,0.7\n",
                          b, &error))
        << error;
    EXPECT_EQ(diffDocs(a, b).exitCode(), 1);
}

} // namespace
} // namespace csp::diff
