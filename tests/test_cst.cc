/** @file Unit tests for the Context-States Table. */

#include <gtest/gtest.h>

#include "prefetch/context/cst.h"

namespace csp::prefetch::ctx {
namespace {

ContextPrefetcherConfig
smallConfig()
{
    ContextPrefetcherConfig config;
    config.cst_entries = 16;
    config.cst_links = 4;
    return config;
}

TEST(Cst, LookupMissOnEmptyTable)
{
    Cst cst(smallConfig());
    EXPECT_EQ(cst.lookup(5), nullptr);
}

TEST(Cst, AddLinkThenLookup)
{
    Cst cst(smallConfig());
    const CstAddResult result = cst.addLink(5, 3);
    EXPECT_TRUE(result.inserted);
    const Cst::Entry *entry = cst.lookup(5);
    ASSERT_NE(entry, nullptr);
    std::int32_t deltas[4];
    EXPECT_EQ(cst.bestLinks(5, deltas, 4, -1), 1u);
    EXPECT_EQ(deltas[0], 3);
}

TEST(Cst, DuplicateDeltaReportedPresent)
{
    Cst cst(smallConfig());
    cst.addLink(5, 3);
    const CstAddResult again = cst.addLink(5, 3);
    EXPECT_FALSE(again.inserted);
    EXPECT_TRUE(again.already_present);
}

TEST(Cst, RewardRanksLinks)
{
    Cst cst(smallConfig());
    cst.addLink(5, 1);
    cst.addLink(5, 2);
    cst.addLink(5, 3);
    cst.reward(5, 2, 10);
    cst.reward(5, 3, 5);
    std::int32_t deltas[4];
    int scores[4];
    const unsigned n = cst.bestLinks(5, deltas, 4, -1, scores);
    ASSERT_EQ(n, 3u);
    EXPECT_EQ(deltas[0], 2);
    EXPECT_EQ(scores[0], 10);
    EXPECT_EQ(deltas[1], 3);
    EXPECT_EQ(deltas[2], 1);
}

TEST(Cst, MinScoreFiltersColdLinks)
{
    Cst cst(smallConfig());
    cst.addLink(5, 1);
    cst.addLink(5, 2);
    cst.reward(5, 2, 4);
    cst.reward(5, 1, -4);
    std::int32_t deltas[4];
    EXPECT_EQ(cst.bestLinks(5, deltas, 4, 0), 1u);
    EXPECT_EQ(deltas[0], 2);
}

TEST(Cst, FullEntryEvictsNonPositiveWeakest)
{
    Cst cst(smallConfig());
    for (std::int32_t d = 1; d <= 4; ++d)
        cst.addLink(5, d);
    cst.reward(5, 1, -5); // weakest
    const CstAddResult result = cst.addLink(5, 9);
    EXPECT_TRUE(result.inserted);
    EXPECT_TRUE(result.evicted_link);
    std::int32_t deltas[4];
    const unsigned n = cst.bestLinks(5, deltas, 4, -100);
    bool has_evicted = false;
    for (unsigned i = 0; i < n; ++i)
        has_evicted = has_evicted || deltas[i] == 1;
    EXPECT_FALSE(has_evicted);
}

TEST(Cst, PositiveLinksProtectedFromEviction)
{
    Cst cst(smallConfig());
    for (std::int32_t d = 1; d <= 4; ++d) {
        cst.addLink(5, d);
        cst.reward(5, d, 10);
    }
    const CstAddResult result = cst.addLink(5, 9);
    EXPECT_FALSE(result.inserted);
    const Cst::Entry *entry = cst.lookup(5);
    ASSERT_NE(entry, nullptr);
    EXPECT_GT(entry->churn, 0);
}

TEST(Cst, ChurnAccumulatesAndClears)
{
    Cst cst(smallConfig());
    for (std::int32_t d = 1; d <= 20; ++d)
        cst.addLink(5, d);
    const Cst::Entry *entry = cst.lookup(5);
    ASSERT_NE(entry, nullptr);
    EXPECT_GT(entry->churn, 0);
    cst.clearChurn(5);
    EXPECT_EQ(cst.lookup(5)->churn, 0);
}

TEST(Cst, TagConflictProtectsLiveEntry)
{
    Cst cst(smallConfig()); // 16 entries: keys 5 and 21 share index 5
    cst.addLink(5, 3);
    cst.reward(5, 3, 20);
    const CstAddResult conflict = cst.addLink(5 + 16, 7);
    EXPECT_TRUE(conflict.entry_conflict);
    EXPECT_NE(cst.lookup(5), nullptr);
    EXPECT_EQ(cst.lookup(5 + 16), nullptr);
}

TEST(Cst, AgedOutEntryYieldsToConflict)
{
    Cst cst(smallConfig());
    cst.addLink(5, 3); // score 0: not protected
    const CstAddResult conflict = cst.addLink(5 + 16, 7);
    EXPECT_TRUE(conflict.inserted);
    EXPECT_EQ(cst.lookup(5), nullptr);
    EXPECT_NE(cst.lookup(5 + 16), nullptr);
}

TEST(Cst, RepeatedConflictsEventuallyEvict)
{
    Cst cst(smallConfig());
    cst.addLink(5, 3);
    cst.reward(5, 3, 6);
    // Each conflicting insertion ages the live entry by 1.
    for (int i = 0; i < 10; ++i)
        cst.addLink(5 + 16, 7);
    EXPECT_NE(cst.lookup(5 + 16), nullptr);
}

TEST(Cst, RandomLinkDrawsFromStoredDeltas)
{
    Cst cst(smallConfig());
    cst.addLink(5, 3);
    cst.addLink(5, -2);
    Rng rng(1);
    for (int i = 0; i < 20; ++i) {
        std::int32_t delta = 0;
        ASSERT_TRUE(cst.randomLink(5, rng, &delta));
        EXPECT_TRUE(delta == 3 || delta == -2);
    }
}

TEST(Cst, RandomLinkFalseWhenEmpty)
{
    Cst cst(smallConfig());
    Rng rng(1);
    std::int32_t delta = 0;
    EXPECT_FALSE(cst.randomLink(5, rng, &delta));
}

TEST(Cst, RewardOnMissingEntryIsNoop)
{
    Cst cst(smallConfig());
    cst.reward(5, 3, 10); // must not crash or create entries
    EXPECT_EQ(cst.lookup(5), nullptr);
}

TEST(Cst, LiveEntriesAndReset)
{
    Cst cst(smallConfig());
    cst.addLink(1, 1);
    cst.addLink(2, 1);
    EXPECT_EQ(cst.liveEntries(), 2u);
    cst.reset();
    EXPECT_EQ(cst.liveEntries(), 0u);
    EXPECT_EQ(cst.lookup(1), nullptr);
}

TEST(Cst, ScoreSaturates)
{
    Cst cst(smallConfig());
    cst.addLink(5, 3);
    for (int i = 0; i < 100; ++i)
        cst.reward(5, 3, 16);
    std::int32_t deltas[4];
    int scores[4];
    cst.bestLinks(5, deltas, 4, -1, scores);
    EXPECT_EQ(scores[0], 127);
}

} // namespace
} // namespace csp::prefetch::ctx
