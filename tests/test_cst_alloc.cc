/** @file Steady-state allocation audit of the Context-States Table.
 *
 *  With links inlined into one contiguous arena, every CST operation
 *  after construction must run without touching the heap. This binary
 *  overrides global operator new/delete with counting wrappers (which
 *  is why the test lives in its own test executable) and asserts the
 *  allocation counter does not move across a steady-state workout of
 *  the full CST API. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/rng.h"
#include "prefetch/context/cst.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void *
countedAlloc(std::size_t size)
{
    ++g_allocations;
    if (void *p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc();
}

void *
countedAlignedAlloc(std::size_t size, std::align_val_t align)
{
    ++g_allocations;
    const std::size_t alignment = static_cast<std::size_t>(align);
    const std::size_t rounded =
        (size + alignment - 1) / alignment * alignment;
    if (void *p = std::aligned_alloc(alignment,
                                     rounded == 0 ? alignment : rounded))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, align);
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, align);
}

void
operator delete(void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    std::free(ptr);
}

namespace csp::prefetch::ctx {
namespace {

TEST(CstAllocation, SteadyStateOperationIsHeapFree)
{
    ContextPrefetcherConfig config;
    config.cst_entries = 256;
    config.cst_links = 8;
    Cst cst(config); // construction may allocate (table + arena)
    Rng rng(42);

    const std::uint64_t before = g_allocations.load();
    for (int step = 0; step < 200000; ++step) {
        const auto key = static_cast<std::uint32_t>(rng.below(4096));
        const auto delta =
            static_cast<std::int32_t>(rng.below(64)) - 32;
        cst.addLink(key, delta);
        cst.reward(key, delta,
                   static_cast<int>(rng.below(5)) - 2);
        std::int32_t deltas[8];
        int scores[8];
        cst.bestLinks(key, deltas, 8, 0, scores);
        std::int32_t chosen;
        cst.randomLink(key, rng, &chosen);
        cst.softmaxLink(key, rng, 2.0, &chosen);
        if ((step & 1023) == 0) {
            cst.clearChurn(key);
            (void)cst.lookup(key);
            (void)cst.liveEntries();
        }
    }
    const std::uint64_t after = g_allocations.load();
    EXPECT_EQ(after, before)
        << (after - before)
        << " heap allocations during steady-state CST operation";
}

} // namespace
} // namespace csp::prefetch::ctx
