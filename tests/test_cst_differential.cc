/**
 * @file
 * Differential test: the packed flat-arena CST against an independent
 * reference implementation of the original chained-slot semantics.
 *
 * The flat CST (single-probe arena, packed header word, int8 delta and
 * score lanes, link-mask slot bookkeeping) was built as a
 * result-preserving replacement for the original struct-per-entry
 * table. This test replays long randomized op sequences against both
 * implementations and demands bit-for-bit identical observable
 * behaviour: insertion outcomes, replacement and victim choices,
 * bestLinks ordering, exploration draws from a shared-seed Rng, churn
 * reporting, and eviction counters.
 *
 * The reference model is deliberately naive — vectors of slot structs,
 * no bit tricks — so any divergence points at the packed
 * implementation, not at a shared abstraction.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/types.h"
#include "prefetch/context/cst.h"

namespace csp::prefetch::ctx {
namespace {

/** The original chained-slot CST semantics, restated plainly. */
class ReferenceCst
{
  public:
    struct Slot
    {
        bool occupied = false;
        std::int32_t delta = 0;
        int score = 0;
    };

    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        unsigned churn = 0;
        std::vector<Slot> slots;
    };

    ReferenceCst(unsigned entries, unsigned links)
        : index_bits_(static_cast<unsigned>(
              std::countr_zero(static_cast<std::uint32_t>(entries)))),
          index_mask_(entries - 1),
          links_(links),
          table_(entries)
    {
        for (Entry &entry : table_)
            entry.slots.resize(links);
    }

    CstAddResult
    addLink(std::uint32_t key, std::int32_t delta)
    {
        CstAddResult result;
        Entry &entry = table_[indexOf(key)];
        const std::uint32_t tag = tagOf(key);
        if (!entry.valid || entry.tag != tag) {
            if (entry.valid) {
                // Age the conflicting entry; keep it while any link
                // still holds a positive score.
                int best = -128;
                for (Slot &slot : entry.slots) {
                    if (!slot.occupied)
                        continue;
                    best = std::max(best, slot.score);
                    slot.score = std::max(slot.score - 1, -128);
                }
                if (best > 0) {
                    result.entry_conflict = true;
                    return result;
                }
                ++entry_evictions;
            }
            entry.valid = true;
            entry.tag = tag;
            entry.churn = 0;
            for (Slot &slot : entry.slots)
                slot = Slot{};
        }

        // One ascending pass: duplicate check plus the first
        // strictly-minimal-score occupied slot (the eviction victim).
        int victim = -1;
        for (unsigned i = 0; i < links_; ++i) {
            Slot &slot = entry.slots[i];
            if (!slot.occupied)
                continue;
            if (slot.delta == delta) {
                result.already_present = true;
                result.entry_matches = true;
                result.churn = static_cast<std::uint8_t>(entry.churn);
                return result;
            }
            if (victim < 0 || slot.score <
                                  entry.slots[static_cast<unsigned>(
                                                  victim)]
                                      .score) {
                victim = static_cast<int>(i);
            }
        }

        int target = -1;
        for (unsigned i = 0; i < links_; ++i) {
            if (!entry.slots[i].occupied) {
                target = static_cast<int>(i);
                break;
            }
        }
        if (target < 0) {
            // Full: replace the weakest link only if it is not
            // positively scored; otherwise drop the candidate and
            // count churn (the overload signal).
            if (entry.slots[static_cast<unsigned>(victim)].score > 0) {
                if (entry.churn < 255)
                    ++entry.churn;
                result.entry_matches = true;
                result.churn = static_cast<std::uint8_t>(entry.churn);
                return result;
            }
            target = victim;
            result.evicted_link = true;
            ++link_evictions;
            if (entry.churn < 255)
                ++entry.churn;
        }
        entry.slots[static_cast<unsigned>(target)] = {true, delta, 0};
        result.inserted = true;
        result.entry_matches = true;
        result.churn = static_cast<std::uint8_t>(entry.churn);
        return result;
    }

    void
    reward(std::uint32_t key, std::int32_t delta, int amount)
    {
        Entry *entry = find(key);
        if (entry == nullptr)
            return;
        for (Slot &slot : entry->slots) {
            if (slot.occupied && slot.delta == delta) {
                slot.score =
                    std::clamp(slot.score + amount, -128, 127);
                if (amount > 0 && entry->churn > 0)
                    --entry->churn;
                return;
            }
        }
    }

    unsigned
    bestLinks(std::uint32_t key, std::int32_t *out, unsigned max_links,
              int min_score, int *scores_out) const
    {
        const Entry *entry = find(key);
        if (entry == nullptr)
            return 0;
        struct Candidate
        {
            std::int32_t delta;
            int score;
        };
        // Same collection order and the same sort call as the real
        // table: ties in score keep slot order only because both sides
        // feed identically ordered arrays to the same sort.
        Candidate candidates[16];
        unsigned count = 0;
        for (unsigned i = 0; i < links_; ++i) {
            const Slot &slot = entry->slots[i];
            if (slot.occupied && slot.score > min_score && count < 16)
                candidates[count++] = {slot.delta, slot.score};
        }
        std::sort(candidates, candidates + count,
                  [](const Candidate &a, const Candidate &b) {
                      return a.score > b.score;
                  });
        const unsigned emit = std::min(count, max_links);
        for (unsigned i = 0; i < emit; ++i) {
            out[i] = candidates[i].delta;
            if (scores_out != nullptr)
                scores_out[i] = candidates[i].score;
        }
        return emit;
    }

    int
    bestScore(std::uint32_t key) const
    {
        const Entry &entry = table_[indexOf(key)];
        int best = -128;
        for (const Slot &slot : entry.slots) {
            if (slot.occupied)
                best = std::max(best, slot.score);
        }
        return best;
    }

    bool
    randomLink(std::uint32_t key, Rng &rng,
               std::int32_t *delta_out) const
    {
        const Entry *entry = find(key);
        if (entry == nullptr)
            return false;
        std::int32_t deltas[16];
        unsigned count = 0;
        for (unsigned i = 0; i < links_ && count < 16; ++i) {
            if (entry->slots[i].occupied)
                deltas[count++] = entry->slots[i].delta;
        }
        if (count == 0)
            return false;
        *delta_out = deltas[rng.below(count)];
        return true;
    }

    bool
    softmaxLink(std::uint32_t key, Rng &rng, double temperature,
                std::int32_t *delta_out) const
    {
        const Entry *entry = find(key);
        if (entry == nullptr)
            return false;
        double weights[16];
        std::int32_t deltas[16];
        unsigned count = 0;
        double total = 0.0;
        for (unsigned i = 0; i < links_ && count < 16; ++i) {
            const Slot &slot = entry->slots[i];
            if (!slot.occupied)
                continue;
            const double w = std::exp(
                static_cast<double>(slot.score) / temperature);
            weights[count] = w;
            deltas[count] = slot.delta;
            total += w;
            ++count;
        }
        if (count == 0)
            return false;
        double pick = rng.uniform() * total;
        for (unsigned i = 0; i < count; ++i) {
            pick -= weights[i];
            if (pick <= 0.0) {
                *delta_out = deltas[i];
                return true;
            }
        }
        *delta_out = deltas[count - 1];
        return true;
    }

    void
    clearChurn(std::uint32_t key)
    {
        if (Entry *entry = find(key))
            entry->churn = 0;
    }

    bool
    present(std::uint32_t key) const
    {
        return find(key) != nullptr;
    }

    unsigned
    liveEntries() const
    {
        unsigned live = 0;
        for (const Entry &entry : table_) {
            if (entry.valid)
                ++live;
        }
        return live;
    }

    std::uint64_t link_evictions = 0;
    std::uint64_t entry_evictions = 0;

  private:
    std::uint32_t indexOf(std::uint32_t key) const
    {
        return key & index_mask_;
    }

    std::uint32_t tagOf(std::uint32_t key) const
    {
        return key >> index_bits_;
    }

    Entry *
    find(std::uint32_t key)
    {
        Entry &entry = table_[indexOf(key)];
        return entry.valid && entry.tag == tagOf(key) ? &entry
                                                      : nullptr;
    }

    const Entry *
    find(std::uint32_t key) const
    {
        const Entry &entry = table_[indexOf(key)];
        return entry.valid && entry.tag == tagOf(key) ? &entry
                                                      : nullptr;
    }

    unsigned index_bits_;
    std::uint32_t index_mask_;
    unsigned links_;
    std::vector<Entry> table_;
};

void
expectSameAddResult(const CstAddResult &a, const CstAddResult &b,
                    std::uint64_t op)
{
    EXPECT_EQ(a.inserted, b.inserted) << "op " << op;
    EXPECT_EQ(a.already_present, b.already_present) << "op " << op;
    EXPECT_EQ(a.evicted_link, b.evicted_link) << "op " << op;
    EXPECT_EQ(a.entry_conflict, b.entry_conflict) << "op " << op;
    EXPECT_EQ(a.entry_matches, b.entry_matches) << "op " << op;
    EXPECT_EQ(a.churn, b.churn) << "op " << op;
}

/** Replay a randomized op mix against both tables and compare every
 *  observable output. Small table + narrow key space force aliasing,
 *  conflicts, full entries, and score-based replacement. */
void
runDifferential(unsigned cst_entries, unsigned cst_links,
                std::uint64_t seed, std::uint64_t ops)
{
    ContextPrefetcherConfig config;
    config.cst_entries = cst_entries;
    config.cst_links = cst_links;
    Cst cst(config);
    ReferenceCst ref(cst_entries, cst_links);

    Rng op_rng(seed);
    // Exploration draws must consume identical streams on both sides;
    // each side gets its own identically seeded generator.
    Rng draw_a(seed ^ 0x9e3779b97f4a7c15ull);
    Rng draw_b(seed ^ 0x9e3779b97f4a7c15ull);

    // Keys span 4x the table so tags collide per index; deltas span
    // the full 1-byte range the prefetcher can produce.
    const std::uint32_t key_space = cst_entries * 4;
    for (std::uint64_t op = 0; op < ops; ++op) {
        const auto key =
            static_cast<std::uint32_t>(op_rng.below(key_space));
        const auto pick = op_rng.below(100);
        if (pick < 50) {
            const auto delta = static_cast<std::int32_t>(
                op_rng.range(-127, 127));
            expectSameAddResult(cst.addLink(key, delta),
                                ref.addLink(key, delta), op);
        } else if (pick < 70) {
            const auto delta = static_cast<std::int32_t>(
                op_rng.range(-127, 127));
            const auto amount =
                static_cast<int>(op_rng.range(-16, 16));
            cst.reward(key, delta, amount);
            ref.reward(key, delta, amount);
        } else if (pick < 80) {
            const auto max_links = static_cast<unsigned>(
                op_rng.below(cst_links + 1));
            const auto min_score =
                static_cast<int>(op_rng.range(-2, 4));
            std::int32_t deltas_a[16], deltas_b[16];
            int scores_a[16], scores_b[16];
            const unsigned na = cst.bestLinks(key, deltas_a, max_links,
                                              min_score, scores_a);
            const unsigned nb = ref.bestLinks(key, deltas_b, max_links,
                                              min_score, scores_b);
            ASSERT_EQ(na, nb) << "op " << op;
            for (unsigned i = 0; i < na; ++i) {
                EXPECT_EQ(deltas_a[i], deltas_b[i]) << "op " << op;
                EXPECT_EQ(scores_a[i], scores_b[i]) << "op " << op;
            }
        } else if (pick < 85) {
            const bool hit_a = cst.lookup(key) != nullptr;
            const bool hit_b = ref.present(key);
            ASSERT_EQ(hit_a, hit_b) << "op " << op;
            if (hit_a)
                EXPECT_EQ(cst.bestScore(key), ref.bestScore(key))
                    << "op " << op;
        } else if (pick < 90) {
            std::int32_t delta_a = 0, delta_b = 0;
            const bool drew_a = cst.randomLink(key, draw_a, &delta_a);
            const bool drew_b = ref.randomLink(key, draw_b, &delta_b);
            ASSERT_EQ(drew_a, drew_b) << "op " << op;
            EXPECT_EQ(delta_a, delta_b) << "op " << op;
        } else if (pick < 95) {
            std::int32_t delta_a = 0, delta_b = 0;
            const bool drew_a =
                cst.softmaxLink(key, draw_a, 4.0, &delta_a);
            const bool drew_b =
                ref.softmaxLink(key, draw_b, 4.0, &delta_b);
            ASSERT_EQ(drew_a, drew_b) << "op " << op;
            EXPECT_EQ(delta_a, delta_b) << "op " << op;
        } else if (pick < 98) {
            cst.clearChurn(key);
            ref.clearChurn(key);
        } else {
            EXPECT_EQ(cst.liveEntries(), ref.liveEntries())
                << "op " << op;
            EXPECT_EQ(cst.linkEvictions(), ref.link_evictions)
                << "op " << op;
            EXPECT_EQ(cst.entryEvictions(), ref.entry_evictions)
                << "op " << op;
        }
        if (::testing::Test::HasFatalFailure())
            return;
    }
    EXPECT_EQ(cst.liveEntries(), ref.liveEntries());
    EXPECT_EQ(cst.linkEvictions(), ref.link_evictions);
    EXPECT_EQ(cst.entryEvictions(), ref.entry_evictions);
}

// The stock 4-link geometry exercises the compile-time-unrolled
// (kLinks = 4) body; the odd link counts take the runtime-bound body.

TEST(CstDifferential, StockFourLinkGeometry)
{
    runDifferential(/*cst_entries=*/64, /*cst_links=*/4,
                    /*seed=*/1, /*ops=*/40000);
}

TEST(CstDifferential, StockGeometrySecondSeed)
{
    runDifferential(/*cst_entries=*/64, /*cst_links=*/4,
                    /*seed=*/77, /*ops=*/40000);
}

TEST(CstDifferential, RuntimeLinkCountThree)
{
    runDifferential(/*cst_entries=*/32, /*cst_links=*/3,
                    /*seed=*/5, /*ops=*/40000);
}

TEST(CstDifferential, RuntimeLinkCountSix)
{
    runDifferential(/*cst_entries=*/16, /*cst_links=*/6,
                    /*seed=*/9, /*ops=*/40000);
}

TEST(CstDifferential, SingleLinkDegenerate)
{
    runDifferential(/*cst_entries=*/8, /*cst_links=*/1,
                    /*seed=*/13, /*ops=*/20000);
}

} // namespace
} // namespace csp::prefetch::ctx
