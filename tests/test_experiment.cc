/** @file Tests for the experiment runner and its helpers. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "sim/experiment.h"

namespace csp::sim {
namespace {

TEST(Experiment, MakePrefetcherKnowsPaperLineup)
{
    SystemConfig config;
    for (const std::string &name : paperPrefetchers()) {
        auto prefetcher = makePrefetcher(name, config);
        ASSERT_NE(prefetcher, nullptr);
        EXPECT_EQ(prefetcher->name(), name);
    }
    EXPECT_EQ(makePrefetcher("markov", config)->name(), "markov");
}

TEST(Experiment, PaperLineupStartsWithBaseline)
{
    const auto lineup = paperPrefetchers();
    ASSERT_FALSE(lineup.empty());
    EXPECT_EQ(lineup.front(), "none");
    EXPECT_EQ(lineup.back(), "context");
}

TEST(Experiment, WorkloadGroupsMatchPaperTable3)
{
    EXPECT_EQ(specWorkloads().size(), 16u);
    EXPECT_EQ(ubenchWorkloads().size(), 8u);
    const auto all = allWorkloads();
    EXPECT_EQ(all.size(), specWorkloads().size() +
                              irregularWorkloads().size() +
                              ubenchWorkloads().size());
}

TEST(Experiment, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({}), 1.0);
    EXPECT_DOUBLE_EQ(geomean({2.0, 2.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
}

TEST(Experiment, GeomeanWarnsInsteadOfHidingNonPositiveValues)
{
    testing::internal::CaptureStderr();
    const double clamped = geomean({0.0, 4.0});
    const std::string output =
        testing::internal::GetCapturedStderr();
    EXPECT_NE(output.find("warn"), std::string::npos);
    EXPECT_NE(output.find("non-positive"), std::string::npos);
    EXPECT_NEAR(clamped, std::sqrt(1e-9 * 4.0), 1e-12);

    testing::internal::CaptureStderr();
    (void)geomean({1.0, 2.0});
    EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST(Experiment, EffectiveScaleHonoursEnvironment)
{
    unsetenv("CSP_SCALE");
    EXPECT_EQ(effectiveScale(1000), 1000u);
    setenv("CSP_SCALE", "2.5", 1);
    EXPECT_EQ(effectiveScale(1000), 2500u);
    setenv("CSP_SCALE", "garbage", 1);
    EXPECT_EQ(effectiveScale(1000), 1000u);
    unsetenv("CSP_SCALE");
}

TEST(Experiment, SweepProducesFullMatrix)
{
    SystemConfig config;
    workloads::WorkloadParams params;
    params.scale = 15000;
    const SweepResult sweep = runSweep(
        {"array", "list"}, {"none", "context"}, params, config,
        /*verbose=*/false);
    EXPECT_EQ(sweep.cells.size(), 4u);
    EXPECT_GT(sweep.at("array", "none").ipc(), 0.0);
    EXPECT_GT(sweep.at("list", "context").ipc(), 0.0);
}

TEST(Experiment, SpeedupRelativeToBaseline)
{
    SystemConfig config;
    workloads::WorkloadParams params;
    params.scale = 40000;
    const SweepResult sweep =
        runSweep({"list"}, {"none", "context"}, params, config,
                 /*verbose=*/false);
    EXPECT_NEAR(sweep.speedup("list", "none"), 1.0, 1e-9);
    EXPECT_GT(sweep.speedup("list", "context"), 1.0);
    EXPECT_NEAR(sweep.geomeanSpeedup("context"),
                sweep.speedup("list", "context"), 1e-9);
}

TEST(Experiment, SweepCarriesProvenanceManifest)
{
    SystemConfig config;
    workloads::WorkloadParams params;
    params.scale = 20000;
    params.seed = 3;
    const auto sweep = [&] {
        return runSweep({"array", "list"}, {"none", "context"},
                        params, config, /*verbose=*/false);
    };
    const SweepResult a = sweep();
    EXPECT_EQ(a.manifest.tool, "runSweep");
    EXPECT_EQ(a.manifest.seed, 3u);
    EXPECT_EQ(a.manifest.workloads, "array,list");
    EXPECT_EQ(a.manifest.prefetchers, "none,context");
    EXPECT_EQ(a.manifest.config_digest,
              hexDigest(configDigest(config)));
    EXPECT_FALSE(a.manifest.trace_digest.empty());
    EXPECT_GT(a.manifest.trace_instructions, 0u);
    // The input identity is reproducible run to run; only wall-clock
    // moves.
    const SweepResult b = sweep();
    EXPECT_EQ(a.manifest.trace_digest, b.manifest.trace_digest);
    EXPECT_EQ(a.manifest.config_digest, b.manifest.config_digest);
}

TEST(ExperimentDeathTest, MissingCellIsFatal)
{
    SweepResult sweep;
    EXPECT_DEATH((void)sweep.at("nope", "none"), "no cell");
}

} // namespace
} // namespace csp::sim
