/** @file Fuzz-style robustness tests: random traces through every
 *  prefetcher and the full simulator must never violate accounting
 *  invariants, whatever the access mix looks like. */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace csp {
namespace {

/** A trace of fully random records (all kinds, wild addresses). */
trace::TraceBuffer
randomTrace(std::uint64_t seed, std::size_t records)
{
    Rng rng(seed);
    trace::TraceBuffer buffer;
    trace::Recorder rec(buffer, 0x400000);
    for (std::size_t i = 0; i < records; ++i) {
        const auto site = static_cast<std::uint32_t>(rng.below(32));
        switch (rng.below(8)) {
          case 0:
            rec.branch(site, rng.chance(0.5));
            break;
          case 1:
            rec.compute(site,
                        static_cast<std::uint32_t>(1 + rng.below(50)));
            break;
          case 2:
            rec.store(site, rng.below(1ull << 34));
            break;
          default: {
            hints::Hint hint;
            if (rng.chance(0.3)) {
                hint = hints::Hint{
                    static_cast<std::uint16_t>(1 + rng.below(7)),
                    static_cast<std::uint16_t>(rng.below(64)),
                    static_cast<hints::RefForm>(1 + rng.below(4))};
            }
            rec.load(site, rng.below(1ull << 34), hint, rng.next(),
                     rng.chance(0.3), rng.next());
            break;
          }
        }
    }
    return buffer;
}

class FuzzTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::string>>
{};

TEST_P(FuzzTest, SimulatorInvariantsSurviveRandomTraces)
{
    const auto [seed, pf_name] = GetParam();
    const trace::TraceBuffer trace = randomTrace(seed, 20000);
    SystemConfig config;
    auto prefetcher = sim::makePrefetcher(pf_name, config);
    sim::Simulator simulator(config);
    const sim::RunStats stats = simulator.run(trace, *prefetcher);

    EXPECT_EQ(stats.instructions, trace.instructions());
    EXPECT_EQ(stats.demand_accesses, trace.memAccesses());
    EXPECT_LE(stats.l2_demand_misses, stats.l1_misses);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_LE(stats.ipc(),
              static_cast<double>(config.core.fetch_width));
    std::uint64_t class_sum = 0;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(sim::AccessClass::Count); ++c)
        class_sum += stats.classes[c];
    EXPECT_EQ(class_sum, stats.demand_accesses);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByPrefetcher, FuzzTest,
    ::testing::Combine(::testing::Values(11ull, 22ull, 33ull),
                       ::testing::Values("none", "stride", "ghb-gdc",
                                         "ghb-pcdc", "sms", "markov",
                                         "jump", "next-line",
                                         "context")),
    [](const auto &info) {
        std::string name =
            "s" + std::to_string(std::get<0>(info.param)) + "_" +
            std::get<1>(info.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(NextLine, TriggersOnMissesOnly)
{
    SystemConfig config;
    auto prefetcher = sim::makePrefetcher("next-line", config);
    trace::ContextSnapshot ctx;
    std::vector<prefetch::PrefetchRequest> out;
    prefetch::AccessInfo info;
    info.line_addr = 0x1000;
    info.context = &ctx;
    info.l1_miss = false;
    prefetcher->observe(info, out);
    EXPECT_TRUE(out.empty());
    info.l1_miss = true;
    prefetcher->observe(info, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, 0x1040u);
}

TEST(NextLine, CoversStreamingWorkloadEndToEnd)
{
    workloads::WorkloadParams params;
    params.scale = 60000;
    const trace::TraceBuffer trace = workloads::Registry::builtin()
                                         .create("libquantum")
                                         ->generate(params);
    SystemConfig config;
    auto none = sim::makePrefetcher("none", config);
    auto next_line = sim::makePrefetcher("next-line", config);
    sim::Simulator sim_a(config);
    sim::Simulator sim_b(config);
    const double base = sim_a.run(trace, *none).ipc();
    const double with = sim_b.run(trace, *next_line).ipc();
    EXPECT_GT(with, base * 1.2);
}

} // namespace
} // namespace csp
