/** @file Unit tests for the GHB delta-correlation prefetcher. */

#include <gtest/gtest.h>

#include "core/rng.h"
#include "prefetch/ghb.h"
#include "trace/context.h"

namespace csp::prefetch {
namespace {

class GhbTest : public ::testing::Test
{
  protected:
    AccessInfo
    missAt(Addr pc, Addr vaddr)
    {
        AccessInfo info;
        info.pc = pc;
        info.vaddr = vaddr;
        info.line_addr = alignDown(vaddr, 64);
        info.l1_miss = true;
        info.context = &ctx;
        return info;
    }

    GhbConfig config;
    trace::ContextSnapshot ctx;
    std::vector<PrefetchRequest> out;
};

TEST_F(GhbTest, GlobalDcReplaysRepeatingDeltaPattern)
{
    GhbPrefetcher pf(config, GhbFlavor::GlobalDC);
    // Delta pattern +1, +2, +3 lines repeating.
    Addr addr = 0x100000;
    const std::int64_t deltas[] = {64, 128, 192};
    for (int rep = 0; rep < 4; ++rep) {
        for (std::int64_t d : deltas) {
            out.clear();
            pf.observe(missAt(0x400, addr), out);
            addr += d;
        }
    }
    // After several repetitions the last-2-delta pattern matches an
    // earlier occurrence and replays the following deltas.
    EXPECT_FALSE(out.empty());
}

TEST_F(GhbTest, PredictionsFollowTheHistoricalDeltas)
{
    GhbPrefetcher pf(config, GhbFlavor::GlobalDC);
    Addr addr = 0x100000;
    const std::int64_t deltas[] = {64, 128, 192};
    Addr last = 0;
    for (int rep = 0; rep < 5; ++rep) {
        for (std::int64_t d : deltas) {
            out.clear();
            pf.observe(missAt(0x400, addr), out);
            last = addr;
            addr += d;
        }
    }
    ASSERT_FALSE(out.empty());
    // The first predicted address continues the recurring pattern from
    // the current address.
    bool plausible = false;
    for (const PrefetchRequest &req : out) {
        if (req.addr == last + 64 || req.addr == last + 128 ||
            req.addr == last + 192)
            plausible = true;
    }
    EXPECT_TRUE(plausible);
}

TEST_F(GhbTest, IgnoresCacheHits)
{
    GhbPrefetcher pf(config, GhbFlavor::GlobalDC);
    for (int i = 0; i < 20; ++i) {
        AccessInfo info = missAt(0x400, 0x10000 + i * 64);
        info.l1_miss = false; // hit: not part of the miss stream
        out.clear();
        pf.observe(info, out);
    }
    EXPECT_TRUE(out.empty());
}

TEST_F(GhbTest, TrainsOnPrefetchedHits)
{
    GhbPrefetcher pf(config, GhbFlavor::GlobalDC);
    for (int i = 0; i < 20; ++i) {
        AccessInfo info = missAt(0x400, 0x10000 + i * 64);
        info.l1_miss = false;
        info.hit_prefetched_line = true; // stays in the trained stream
        out.clear();
        pf.observe(info, out);
    }
    EXPECT_FALSE(out.empty());
}

TEST_F(GhbTest, PcDcSeparatesStreamsByPc)
{
    GhbPrefetcher pf(config, GhbFlavor::PcDC);
    // Two interleaved streams with different strides; interleaving
    // breaks the global deltas but PC-localisation recovers each.
    Addr a = 0x100000;
    Addr b = 0x900000;
    for (int i = 0; i < 12; ++i) {
        out.clear();
        pf.observe(missAt(0x400, a), out);
        a += 64;
        out.clear();
        pf.observe(missAt(0x800, b), out);
        b += 192;
    }
    ASSERT_FALSE(out.empty());
    // Last observation was the PC 0x800 stream: predictions should be
    // in its neighbourhood, not the other stream's.
    EXPECT_GT(out[0].addr, 0x900000u);
}

TEST_F(GhbTest, GlobalDcConfusedByInterleavingThatPcDcHandles)
{
    GhbPrefetcher gdc(config, GhbFlavor::GlobalDC);
    GhbPrefetcher pcdc(config, GhbFlavor::PcDC);
    Addr a = 0x100000;
    Addr b = 0x900000;
    std::size_t gdc_predictions = 0;
    std::size_t pcdc_predictions = 0;
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        // Aperiodic interleave of two strided streams: the global
        // delta sequence never settles, the per-PC sequences do.
        const bool pick_a = rng.chance(0.5);
        const Addr addr = pick_a ? (a += 64) : (b += 128);
        const Addr pc = pick_a ? 0x400 : 0x800;
        out.clear();
        gdc.observe(missAt(pc, addr), out);
        gdc_predictions += out.size();
        out.clear();
        pcdc.observe(missAt(pc, addr), out);
        pcdc_predictions += out.size();
    }
    EXPECT_GT(pcdc_predictions, 0u);
    EXPECT_GE(pcdc_predictions, gdc_predictions);
}

TEST_F(GhbTest, NamesReflectFlavor)
{
    EXPECT_EQ(GhbPrefetcher(config, GhbFlavor::GlobalDC).name(),
              "ghb-gdc");
    EXPECT_EQ(GhbPrefetcher(config, GhbFlavor::PcDC).name(),
              "ghb-pcdc");
}

TEST_F(GhbTest, DegreeBoundsPredictions)
{
    config.degree = 2;
    GhbPrefetcher pf(config, GhbFlavor::GlobalDC);
    Addr addr = 0x100000;
    for (int i = 0; i < 40; ++i) {
        out.clear();
        pf.observe(missAt(0x400, addr), out);
        addr += 64;
    }
    EXPECT_LE(out.size(), 2u);
}

} // namespace
} // namespace csp::prefetch
