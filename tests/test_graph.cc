/** @file Unit tests for the graph substrates (R-MAT, CSR, linked). */

#include <gtest/gtest.h>

#include <queue>
#include <set>

#include "workloads/graph/csr_graph.h"
#include "workloads/graph/linked_graph.h"
#include "workloads/graph/rmat.h"

namespace csp::workloads::graph {
namespace {

TEST(Rmat, EdgeCountMatchesParameters)
{
    RmatParams params;
    params.scale = 8;
    params.edge_factor = 4;
    const auto edges = generateRmat(params);
    EXPECT_EQ(edges.size(), (1u << 8) * 4);
    EXPECT_EQ(vertexCount(params), 256u);
}

TEST(Rmat, VerticesInRange)
{
    RmatParams params;
    params.scale = 9;
    const auto edges = generateRmat(params);
    for (const Edge &edge : edges) {
        EXPECT_LT(edge.from, 512u);
        EXPECT_LT(edge.to, 512u);
        EXPECT_GE(edge.weight, 1u);
        EXPECT_LE(edge.weight, params.max_weight);
    }
}

TEST(Rmat, DeterministicPerSeed)
{
    RmatParams params;
    params.scale = 8;
    params.seed = 77;
    const auto a = generateRmat(params);
    const auto b = generateRmat(params);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].from, b[i].from);
        EXPECT_EQ(a[i].to, b[i].to);
    }
}

TEST(Rmat, SkewedDegreeDistribution)
{
    // R-MAT with Graph500 parameters produces hubs: the max degree is
    // far above the mean.
    RmatParams params;
    params.scale = 10;
    params.edge_factor = 8;
    params.permute_vertices = false;
    const auto edges = generateRmat(params);
    std::vector<std::uint32_t> degree(1u << 10, 0);
    for (const Edge &edge : edges)
        ++degree[edge.from];
    const std::uint32_t max_degree =
        *std::max_element(degree.begin(), degree.end());
    EXPECT_GT(max_degree, 8u * 8);
}

TEST(Csr, DegreesAndOffsetsConsistent)
{
    const std::vector<Edge> edges = {
        {0, 1, 1}, {0, 2, 1}, {1, 2, 1}};
    const CsrGraph graph(edges, 3, /*undirected=*/false);
    EXPECT_EQ(graph.edgeCount(), 3u);
    EXPECT_EQ(graph.degree(0), 2u);
    EXPECT_EQ(graph.degree(1), 1u);
    EXPECT_EQ(graph.degree(2), 0u);
}

TEST(Csr, UndirectedSymmetrises)
{
    const std::vector<Edge> edges = {{0, 1, 5}};
    const CsrGraph graph(edges, 2, /*undirected=*/true);
    EXPECT_EQ(graph.edgeCount(), 2u);
    EXPECT_EQ(graph.degree(0), 1u);
    EXPECT_EQ(graph.degree(1), 1u);
    EXPECT_EQ(graph.target(graph.offset(1)), 0u);
    EXPECT_EQ(graph.weight(graph.offset(1)), 5u);
}

TEST(Csr, SelfLoopNotDuplicated)
{
    const std::vector<Edge> edges = {{1, 1, 2}};
    const CsrGraph graph(edges, 2, /*undirected=*/true);
    EXPECT_EQ(graph.edgeCount(), 1u);
}

TEST(Csr, BfsDistancesOnPathGraph)
{
    const std::vector<Edge> edges = {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}};
    const CsrGraph graph(edges, 4);
    const auto dist = graph.bfsDistances(0);
    EXPECT_EQ(dist[0], 0u);
    EXPECT_EQ(dist[1], 1u);
    EXPECT_EQ(dist[2], 2u);
    EXPECT_EQ(dist[3], 3u);
}

TEST(Csr, BfsMarksUnreachable)
{
    const std::vector<Edge> edges = {{0, 1, 1}};
    const CsrGraph graph(edges, 3);
    const auto dist = graph.bfsDistances(0);
    EXPECT_EQ(dist[2], 0xffffffffu);
}

TEST(Linked, MirrorsCsrStructure)
{
    RmatParams params;
    params.scale = 6;
    params.edge_factor = 4;
    const auto edges = generateRmat(params);
    const std::uint32_t n = vertexCount(params);
    const CsrGraph csr(edges, n);
    runtime::Arena arena(LinkedGraph::arenaBytes(n, edges.size(), true),
                         runtime::Placement::Sequential, 1);
    LinkedGraph linked(arena, edges, n);
    for (std::uint32_t v = 0; v < n; ++v) {
        std::multiset<std::uint32_t> csr_targets;
        for (std::uint64_t e = csr.offset(v); e < csr.offset(v + 1);
             ++e)
            csr_targets.insert(csr.target(e));
        std::multiset<std::uint32_t> linked_targets;
        for (const LinkedGraph::EdgeNode *e = linked.vertex(v)->first;
             e != nullptr; e = e->next)
            linked_targets.insert(e->to->id);
        ASSERT_EQ(csr_targets, linked_targets) << "vertex " << v;
    }
}

TEST(Linked, BfsAgreesWithCsrReference)
{
    RmatParams params;
    params.scale = 7;
    params.edge_factor = 4;
    const auto edges = generateRmat(params);
    const std::uint32_t n = vertexCount(params);
    const CsrGraph csr(edges, n);
    runtime::Arena arena(LinkedGraph::arenaBytes(n, edges.size(), true),
                         runtime::Placement::Sequential, 1);
    LinkedGraph linked(arena, edges, n);

    const auto reference = csr.bfsDistances(0);
    linked.clearMarks();
    std::queue<LinkedGraph::VertexNode *> frontier;
    linked.vertex(0)->mark = 0;
    frontier.push(linked.vertex(0));
    while (!frontier.empty()) {
        LinkedGraph::VertexNode *u = frontier.front();
        frontier.pop();
        for (LinkedGraph::EdgeNode *e = u->first; e != nullptr;
             e = e->next) {
            if (e->to->mark == 0xffffffffu) {
                e->to->mark = u->mark + 1;
                frontier.push(e->to);
            }
        }
    }
    for (std::uint32_t v = 0; v < n; ++v)
        EXPECT_EQ(linked.vertex(v)->mark, reference[v]) << v;
}

TEST(Linked, AdjacencyChainsAreAllocationLocal)
{
    // Edges grouped by source: a vertex's chain nodes sit close in the
    // simulated heap, within reach of the CST's 1-byte deltas.
    RmatParams params;
    params.scale = 8;
    params.edge_factor = 8;
    const auto edges = generateRmat(params);
    const std::uint32_t n = vertexCount(params);
    runtime::Arena arena(LinkedGraph::arenaBytes(n, edges.size(), true),
                         runtime::Placement::Sequential, 1);
    LinkedGraph linked(arena, edges, n);
    std::uint64_t within_reach = 0;
    std::uint64_t total = 0;
    for (std::uint32_t v = 0; v < n; ++v) {
        for (const LinkedGraph::EdgeNode *e = linked.vertex(v)->first;
             e != nullptr && e->next != nullptr; e = e->next) {
            const std::int64_t delta =
                blockDelta(arena.addrOf(e), arena.addrOf(e->next), 64);
            ++total;
            if (delta >= -127 && delta <= 127)
                ++within_reach;
        }
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(within_reach) /
                  static_cast<double>(total),
              0.95);
}

} // namespace
} // namespace csp::workloads::graph
