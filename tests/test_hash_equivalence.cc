/**
 * @file
 * Equivalence proof for the incremental (lane-cached) context hashing
 * against the from-scratch WordHasher chain it replaces.
 *
 * ContextSnapshot keeps one pre-mixed hash lane per attribute and
 * refreshes a lane only when set() changes the value; hash(mask, bits)
 * then combines the selected lanes. The documented contract is that
 * this is bit-compatible with a WordHasher chain over the index-salted
 * attribute values in index order. This test replays real workload
 * traces through HwContextTracker — the producer whose capture pattern
 * (most attributes stable across consecutive accesses) the lane cache
 * is built for — and checks, for every memory access and a spread of
 * (mask, bits) pairs, that the incremental snapshot, a freshly
 * constructed snapshot, and the explicit WordHasher chain all agree.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/hashing.h"
#include "trace/context.h"
#include "trace/hw_state.h"
#include "workloads/registry.h"

namespace csp::trace {
namespace {

/** Ground truth: WordHasher over the index-salted values of the
 *  attributes selected by @p mask, ascending attribute index. */
std::uint64_t
scratchHash(const ContextSnapshot &ctx, AttrMask mask, unsigned bits)
{
    WordHasher hasher;
    for (unsigned i = 0; i < kNumAttrs; ++i) {
        if (!(mask & (1u << i)))
            continue;
        hasher.add((static_cast<std::uint64_t>(i) << 56) ^
                   ctx.get(static_cast<Attr>(i)));
    }
    return hasher.digestBits(bits);
}

/** Every mask worth checking: each single attribute, the two named
 *  masks, the empty mask, and a handful of mixed patterns. */
std::vector<AttrMask>
masksUnderTest()
{
    std::vector<AttrMask> masks;
    for (unsigned i = 0; i < kNumAttrs; ++i)
        masks.push_back(static_cast<AttrMask>(1u << i));
    masks.push_back(kAllAttrs);
    masks.push_back(kHardwareAttrs);
    masks.push_back(0);
    masks.push_back(0b10101010);
    masks.push_back(0b01010101);
    masks.push_back(0b00110011);
    return masks;
}

void
replayAndCompare(const std::string &workload_name)
{
    workloads::WorkloadParams params;
    params.scale = 20000;
    params.seed = 3;
    const auto workload =
        workloads::Registry::builtin().create(workload_name);
    const std::vector<TraceRecord> records =
        workload->generate(params).decode();
    ASSERT_FALSE(records.empty());

    const std::vector<AttrMask> masks = masksUnderTest();
    const unsigned widths[] = {12, 16, 19, 32, 64};

    HwContextTracker hw;
    // The incremental snapshot lives across the whole replay, exactly
    // like the simulator's run-local snapshot: captureInto() only
    // re-mixes lanes whose values changed since the last access.
    ContextSnapshot incremental;
    std::uint64_t accesses = 0;
    std::uint64_t mismatches = 0;
    for (const TraceRecord &rec : records) {
        if (rec.kind == InstKind::Load ||
            rec.kind == InstKind::Store) {
            hw.captureInto(rec, incremental);
            // From-scratch control: a fresh snapshot re-mixes every
            // lane from the captured values.
            ContextSnapshot fresh;
            for (unsigned i = 0; i < kNumAttrs; ++i) {
                fresh.set(static_cast<Attr>(i),
                          incremental.get(static_cast<Attr>(i)));
            }
            ++accesses;
            for (const AttrMask mask : masks) {
                for (const unsigned bits : widths) {
                    const std::uint64_t want =
                        scratchHash(incremental, mask, bits);
                    if (incremental.hash(mask, bits) != want ||
                        fresh.hash(mask, bits) != want) {
                        ++mismatches;
                    }
                }
            }
        }
        hw.update(rec);
    }
    EXPECT_GT(accesses, 1000u);
    EXPECT_EQ(mismatches, 0u);
}

TEST(HashEquivalence, McfReplay)
{
    replayAndCompare("mcf");
}

TEST(HashEquivalence, ListReplay)
{
    replayAndCompare("list");
}

// Directed check, independent of any trace: after arbitrary set()
// churn — including writes that do not change the value, the case the
// lane cache optimises — the cached-lane hash still equals the
// from-scratch chain for every mask.
TEST(HashEquivalence, RepeatedSetsKeepLanesCoherent)
{
    ContextSnapshot ctx;
    std::uint64_t v = 0x1234'5678'9abc'def0ull;
    for (int round = 0; round < 64; ++round) {
        for (unsigned i = 0; i < kNumAttrs; ++i) {
            // Every third round rewrites the same value (no-op path).
            if (round % 3 != 0)
                v = mix64(v + i);
            ctx.set(static_cast<Attr>(i), v);
        }
        for (const AttrMask mask : masksUnderTest()) {
            EXPECT_EQ(ctx.hash(mask, 64), scratchHash(ctx, mask, 64))
                << "round " << round << " mask " << mask;
        }
    }
}

} // namespace
} // namespace csp::trace
