/** @file Unit tests for the hashing primitives. */

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "core/hashing.h"

namespace csp {
namespace {

TEST(Hashing, Fnv1aKnownVector)
{
    // FNV-1a of the empty input is the offset basis.
    EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ull);
}

TEST(Hashing, Fnv1aDiffersPerByte)
{
    const std::array<std::uint8_t, 3> a{1, 2, 3};
    const std::array<std::uint8_t, 3> b{1, 2, 4};
    EXPECT_NE(fnv1a(a), fnv1a(b));
}

TEST(Hashing, Mix64IsDeterministicAndNontrivial)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), 42u);
    EXPECT_NE(mix64(0), mix64(1));
}

TEST(Hashing, Mix64AvalanchesLowBits)
{
    // Flipping one input bit should flip many output bits.
    const std::uint64_t a = mix64(0x1000);
    const std::uint64_t b = mix64(0x1001);
    int flipped = __builtin_popcountll(a ^ b);
    EXPECT_GT(flipped, 16);
}

TEST(Hashing, CombineOrderMatters)
{
    const std::uint64_t ab = hashCombine(hashCombine(0, 1), 2);
    const std::uint64_t ba = hashCombine(hashCombine(0, 2), 1);
    EXPECT_NE(ab, ba);
}

TEST(Hashing, WordHasherDeterministic)
{
    WordHasher a;
    WordHasher b;
    for (std::uint64_t v : {1ull, 99ull, 0xdeadbeefull}) {
        a.add(v);
        b.add(v);
    }
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(Hashing, WordHasherOrderSensitive)
{
    WordHasher a;
    a.add(1);
    a.add(2);
    WordHasher b;
    b.add(2);
    b.add(1);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(Hashing, DigestBitsMasks)
{
    WordHasher h;
    h.add(0x123456789abcdef0ull);
    EXPECT_LT(h.digestBits(16), 1ull << 16);
    EXPECT_LT(h.digestBits(19), 1ull << 19);
    EXPECT_EQ(h.digestBits(64), h.digest());
    EXPECT_EQ(h.digestBits(16), h.digest() & 0xffff);
}

TEST(Hashing, FewCollisionsOnSmallDomain)
{
    // 1000 consecutive integers into 19 bits: expect mostly unique.
    std::set<std::uint64_t> seen;
    WordHasher base;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        WordHasher h;
        h.add(i);
        seen.insert(h.digestBits(19));
    }
    EXPECT_GT(seen.size(), 995u);
}

} // namespace
} // namespace csp
