/** @file Unit tests for the two-level hierarchy with prefetching. */

#include <gtest/gtest.h>

#include "mem/hierarchy.h"

namespace csp::mem {
namespace {

MemoryConfig
defaultMem()
{
    return MemoryConfig{};
}

TEST(Hierarchy, ColdMissGoesToMemory)
{
    Hierarchy h(defaultMem());
    const AccessResult r = h.access(0x10000, 0);
    EXPECT_TRUE(r.l1_miss);
    EXPECT_TRUE(r.l2_miss);
    EXPECT_EQ(r.level, ServiceLevel::Memory);
    // latency: L1 lat (2) + L2 lat (20) + DRAM (300) = 322.
    EXPECT_EQ(r.complete, 322u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    Hierarchy h(defaultMem());
    const AccessResult first = h.access(0x10000, 0);
    const AccessResult second = h.access(0x10008, first.complete + 1);
    EXPECT_FALSE(second.l1_miss);
    EXPECT_EQ(second.level, ServiceLevel::L1);
    EXPECT_EQ(second.complete, first.complete + 1 + 2);
}

TEST(Hierarchy, InFlightMergeShortensWait)
{
    Hierarchy h(defaultMem());
    const AccessResult first = h.access(0x10000, 0);
    // Same line again while the fill is still in flight.
    const AccessResult second = h.access(0x10000, 10);
    EXPECT_TRUE(second.l1_miss);
    EXPECT_EQ(second.level, ServiceLevel::L1InFlight);
    EXPECT_EQ(second.complete, first.complete);
    // No extra DRAM access.
    EXPECT_EQ(h.stats().l2_demand_misses, 1u);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryConfig config = defaultMem();
    config.l1d.size_bytes = 2 * 64; // 1 set x 2 ways: tiny L1
    config.l1d.ways = 2;
    Hierarchy h(config);
    Cycle t = 0;
    // Fill three distinct lines: first one gets evicted from L1.
    for (Addr a : {0x10000, 0x20000, 0x30000}) {
        t = h.access(a, t).complete + 1;
    }
    const AccessResult r = h.access(0x10000, t);
    EXPECT_TRUE(r.l1_miss);
    EXPECT_FALSE(r.l2_miss);
    EXPECT_EQ(r.level, ServiceLevel::L2);
}

TEST(Hierarchy, PrefetchedLineClassifiedOnDemandHit)
{
    Hierarchy h(defaultMem());
    EXPECT_EQ(h.prefetch(0x40000, 0, 0), PrefetchOutcome::Issued);
    const AccessResult r = h.access(0x40000, 1000);
    EXPECT_FALSE(r.l1_miss);
    EXPECT_TRUE(r.hit_prefetched_line);
    // A second hit no longer counts as prefetched (already used).
    const AccessResult r2 = h.access(0x40000, 1100);
    EXPECT_FALSE(r2.hit_prefetched_line);
}

TEST(Hierarchy, InFlightPrefetchGivesShorterWait)
{
    Hierarchy h(defaultMem());
    h.prefetch(0x40000, 0, 0);
    const AccessResult r = h.access(0x40000, 100); // fill lands at 322
    EXPECT_TRUE(r.l1_miss);
    EXPECT_TRUE(r.shorter_wait);
    EXPECT_LT(r.complete, 100 + 322);
}

TEST(Hierarchy, DuplicatePrefetchReported)
{
    Hierarchy h(defaultMem());
    EXPECT_EQ(h.prefetch(0x40000, 0, 0), PrefetchOutcome::Issued);
    EXPECT_EQ(h.prefetch(0x40000, 1, 0),
              PrefetchOutcome::AlreadyHere);
    EXPECT_EQ(h.stats().prefetches_duplicate, 1u);
}

TEST(Hierarchy, PrefetchDroppedWhenL2MshrsSaturated)
{
    MemoryConfig config = defaultMem();
    config.l2.mshrs = 1;
    config.l2_mshr_reserve = 0;
    config.prefetch_mshr_wait_limit = 10;
    Hierarchy h(config);
    h.access(0x10000, 0); // occupies the single L2 MSHR until ~322
    EXPECT_EQ(h.prefetch(0x40000, 1, 0), PrefetchOutcome::NoMshr);
    EXPECT_EQ(h.stats().prefetches_dropped, 1u);
}

TEST(Hierarchy, PrefetchReserveProtectsDemands)
{
    MemoryConfig config = defaultMem();
    config.l2.mshrs = 4;
    config.l2_mshr_reserve = 4; // reserve everything
    Hierarchy h(config);
    EXPECT_EQ(h.prefetch(0x40000, 0, 0), PrefetchOutcome::NoMshr);
}

TEST(Hierarchy, UnusedPrefetchCountedAtFinish)
{
    Hierarchy h(defaultMem());
    h.prefetch(0x40000, 0, 0);
    h.prefetch(0x50000, 0, 0);
    h.access(0x40000, 1000); // uses the first one
    h.finish();
    EXPECT_EQ(h.stats().prefetchesNeverHit(), 1u);
}

TEST(Hierarchy, DramBandwidthSpacesFills)
{
    MemoryConfig config = defaultMem();
    config.dram_issue_interval = 50;
    Hierarchy h(config);
    const AccessResult a = h.access(0x10000, 0);
    const AccessResult b = h.access(0x20000, 0);
    EXPECT_EQ(b.complete - a.complete, 50u);
}

TEST(Hierarchy, MshrLimitSerialisesMisses)
{
    MemoryConfig config = defaultMem();
    config.l1d.mshrs = 1;
    config.dram_issue_interval = 0;
    Hierarchy h(config);
    const AccessResult a = h.access(0x10000, 0);
    const AccessResult b = h.access(0x20000, 0);
    // The second miss waits for the first fill's MSHR.
    EXPECT_GE(b.complete, a.complete + 300);
}

TEST(Hierarchy, DemandStatsAccumulate)
{
    Hierarchy h(defaultMem());
    h.access(0x10000, 0);
    h.access(0x10000, 1000);
    h.access(0x20000, 2000);
    EXPECT_EQ(h.stats().demand_accesses, 3u);
    EXPECT_EQ(h.stats().l1_misses, 2u);
    EXPECT_EQ(h.stats().l2_demand_misses, 2u);
}

TEST(Hierarchy, ResetClearsState)
{
    Hierarchy h(defaultMem());
    h.access(0x10000, 0);
    h.reset();
    EXPECT_EQ(h.stats().demand_accesses, 0u);
    const AccessResult r = h.access(0x10000, 0);
    EXPECT_TRUE(r.l2_miss);
}

TEST(Hierarchy, LineAddrUsesL1Geometry)
{
    Hierarchy h(defaultMem());
    EXPECT_EQ(h.lineAddr(0x1234), 0x1200u);
}

TEST(Hierarchy, PrefetchToL2OnlyStillCutsDemandLatency)
{
    // Saturate L1 MSHR headroom so the prefetch cannot fill L1; the
    // demand should then be served by a prefetched L2 line.
    MemoryConfig config = defaultMem();
    config.l1d.mshrs = 1;
    Hierarchy h(config);
    h.access(0x10000, 0); // keeps the single L1 MSHR busy until 322
    EXPECT_EQ(h.prefetch(0x40000, 1, 0), PrefetchOutcome::Issued);
    const AccessResult r = h.access(0x40000, 400);
    EXPECT_EQ(r.level, ServiceLevel::L2);
    EXPECT_TRUE(r.shorter_wait);
}

} // namespace
} // namespace csp::mem
