/** @file Unit tests for the compiler-hint layer. */

#include <gtest/gtest.h>

#include "hints/hint.h"

namespace csp::hints {
namespace {

TEST(Hint, DefaultIsInvalid)
{
    const Hint hint;
    EXPECT_FALSE(hint.valid());
    EXPECT_EQ(hint.link_offset, kNoLinkOffset);
}

TEST(Hint, ValidWhenRefFormSet)
{
    const Hint hint{1, 8, RefForm::Arrow};
    EXPECT_TRUE(hint.valid());
}

TEST(Hint, PackUnpackRoundTrip)
{
    const Hint hint{1234, 24, RefForm::Deref};
    const Hint back = Hint::unpack(hint.pack());
    EXPECT_EQ(back.type_id, 1234);
    EXPECT_EQ(back.link_offset, 24);
    EXPECT_EQ(back.ref_form, RefForm::Deref);
    EXPECT_EQ(back, hint);
}

TEST(Hint, UnpackOfZeroIsInvalid)
{
    const Hint hint = Hint::unpack(0);
    EXPECT_FALSE(hint.valid());
    EXPECT_EQ(hint.link_offset, kNoLinkOffset);
}

TEST(Hint, AllRefFormsRoundTrip)
{
    for (RefForm form : {RefForm::Dot, RefForm::Arrow, RefForm::Deref,
                         RefForm::Index}) {
        const Hint hint{7, 16, form};
        EXPECT_EQ(Hint::unpack(hint.pack()).ref_form, form);
    }
}

TEST(Hint, Equality)
{
    const Hint a{1, 8, RefForm::Arrow};
    const Hint b{1, 8, RefForm::Arrow};
    const Hint c{2, 8, RefForm::Arrow};
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a == c);
}

TEST(TypeEnumerator, SequentialUniqueIds)
{
    TypeEnumerator types;
    const auto a = types.fresh();
    const auto b = types.fresh();
    const auto c = types.fresh();
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
    EXPECT_EQ(c, 3);
}

TEST(TypeEnumerator, ZeroIsReservedForNoType)
{
    TypeEnumerator types;
    EXPECT_NE(types.fresh(), 0);
}

} // namespace
} // namespace csp::hints
