/** @file Unit tests for the collection unit's history queue. */

#include <gtest/gtest.h>

#include "prefetch/context/history_queue.h"

namespace csp::prefetch::ctx {
namespace {

HistoryEntry
entry(AccessSeq seq)
{
    HistoryEntry e;
    e.reduced_key = static_cast<std::uint32_t>(seq * 7);
    e.line = 0x1000 + seq * 64;
    e.seq = seq;
    return e;
}

TEST(HistoryQueue, AtDepthOneIsNewest)
{
    HistoryQueue q(50);
    q.push(entry(1));
    q.push(entry(2));
    ASSERT_NE(q.at(1), nullptr);
    EXPECT_EQ(q.at(1)->seq, 2u);
    ASSERT_NE(q.at(2), nullptr);
    EXPECT_EQ(q.at(2)->seq, 1u);
}

TEST(HistoryQueue, DepthZeroIsInvalid)
{
    HistoryQueue q(50);
    q.push(entry(1));
    EXPECT_EQ(q.at(0), nullptr);
}

TEST(HistoryQueue, DepthBeyondSizeIsNull)
{
    HistoryQueue q(50);
    q.push(entry(1));
    EXPECT_EQ(q.at(2), nullptr);
    EXPECT_EQ(q.at(51), nullptr);
}

TEST(HistoryQueue, OldEntriesOverwrittenAtCapacity)
{
    HistoryQueue q(4);
    for (AccessSeq s = 0; s < 10; ++s)
        q.push(entry(s));
    EXPECT_EQ(q.size(), 4u);
    EXPECT_EQ(q.at(1)->seq, 9u);
    EXPECT_EQ(q.at(4)->seq, 6u);
    EXPECT_EQ(q.at(5), nullptr);
}

TEST(HistoryQueue, DefaultSampleDepthsSpanRewardWindow)
{
    HistoryQueue q(50);
    const auto depths = q.sampleDepths();
    ASSERT_FALSE(depths.empty());
    EXPECT_GE(depths.front(), 18u);
    EXPECT_LE(depths.back(), 50u);
}

TEST(HistoryQueue, SampleReturnsConfiguredDepths)
{
    HistoryQueue q(50, {2, 5});
    for (AccessSeq s = 0; s < 20; ++s)
        q.push(entry(s));
    std::vector<const HistoryEntry *> samples;
    q.sample(samples);
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0]->seq, 18u); // depth 2
    EXPECT_EQ(samples[1]->seq, 15u); // depth 5
}

TEST(HistoryQueue, SampleSkipsUnfilledDepths)
{
    HistoryQueue q(50, {1, 30});
    q.push(entry(0));
    q.push(entry(1));
    std::vector<const HistoryEntry *> samples;
    q.sample(samples);
    EXPECT_EQ(samples.size(), 1u);
}

TEST(HistoryQueue, ClearEmptiesQueue)
{
    HistoryQueue q(50);
    q.push(entry(1));
    q.clear();
    EXPECT_EQ(q.size(), 0u);
    EXPECT_EQ(q.at(1), nullptr);
}

TEST(HistoryQueue, CapacityMatchesPaperDefault)
{
    HistoryQueue q(50);
    EXPECT_EQ(q.capacity(), 50u);
}

} // namespace
} // namespace csp::prefetch::ctx
