/** @file Unit tests for the hardware-context tracker. */

#include <gtest/gtest.h>

#include "trace/hw_state.h"

namespace csp::trace {
namespace {

TraceRecord
loadRec(Addr pc, Addr vaddr, std::uint64_t loaded = 0)
{
    TraceRecord rec;
    rec.kind = InstKind::Load;
    rec.pc = pc;
    rec.vaddr = vaddr;
    rec.loaded_value = loaded;
    return rec;
}

TraceRecord
branchRec(bool taken)
{
    TraceRecord rec;
    rec.kind = InstKind::Branch;
    rec.taken = taken;
    return rec;
}

TEST(HwState, CaptureReflectsIp)
{
    HwContextTracker hw;
    const auto ctx = hw.capture(loadRec(0x400100, 0x1000));
    EXPECT_EQ(ctx.get(Attr::IP), 0x400100u);
}

TEST(HwState, BranchHistoryShiftsIn)
{
    HwContextTracker hw;
    hw.update(branchRec(true));
    hw.update(branchRec(false));
    hw.update(branchRec(true));
    EXPECT_EQ(hw.branchHistory(), 0b101u);
}

TEST(HwState, BranchHistoryVisibleInContext)
{
    HwContextTracker hw;
    hw.update(branchRec(true));
    const auto ctx = hw.capture(loadRec(0x400100, 0x1000));
    EXPECT_EQ(ctx.get(Attr::BranchHistory), 1u);
}

TEST(HwState, PrevDataIsLastLoadedValue)
{
    HwContextTracker hw;
    hw.update(loadRec(0x400100, 0x1000, 0xfeed));
    const auto ctx = hw.capture(loadRec(0x400104, 0x2000));
    EXPECT_EQ(ctx.get(Attr::PrevData), 0xfeedu);
}

TEST(HwState, CaptureBeforeUpdateExcludesCurrentAccess)
{
    HwContextTracker hw(64);
    hw.update(loadRec(0x400100, 0x1000, 1));
    const auto before = hw.capture(loadRec(0x400104, 0x2000, 2));
    hw.update(loadRec(0x400104, 0x2000, 2));
    const auto after = hw.capture(loadRec(0x400108, 0x3000, 3));
    EXPECT_NE(before.get(Attr::AddrHistory),
              after.get(Attr::AddrHistory));
    EXPECT_EQ(before.get(Attr::PrevData), 1u);
    EXPECT_EQ(after.get(Attr::PrevData), 2u);
}

TEST(HwState, AddrHistoryAtBlockGranularity)
{
    HwContextTracker hw(64);
    hw.update(loadRec(0x400100, 0x1000));
    const auto a = hw.capture(loadRec(0x400104, 0x9000));
    HwContextTracker hw2(64);
    hw2.update(loadRec(0x400100, 0x1020)); // same 64B block as 0x1000
    const auto b = hw2.capture(loadRec(0x400104, 0x9000));
    EXPECT_EQ(a.get(Attr::AddrHistory), b.get(Attr::AddrHistory));
}

TEST(HwState, StoresUpdateAddressHistoryNotPrevData)
{
    HwContextTracker hw(64);
    hw.update(loadRec(0x400100, 0x1000, 0x11));
    TraceRecord store;
    store.kind = InstKind::Store;
    store.pc = 0x400104;
    store.vaddr = 0x5000;
    hw.update(store);
    const auto ctx = hw.capture(loadRec(0x400108, 0x2000));
    EXPECT_EQ(ctx.get(Attr::PrevData), 0x11u);
}

TEST(HwState, HintsMergeIntoContext)
{
    HwContextTracker hw;
    TraceRecord rec = loadRec(0x400100, 0x1000);
    rec.hint = hints::Hint{9, 16, hints::RefForm::Arrow};
    const auto ctx = hw.capture(rec);
    EXPECT_EQ(ctx.get(Attr::TypeInfo), 9u);
    EXPECT_EQ(ctx.get(Attr::LinkOffset), 16u);
    EXPECT_EQ(ctx.get(Attr::RefForm),
              static_cast<std::uint64_t>(hints::RefForm::Arrow));
}

TEST(HwState, MissingHintYieldsSentinels)
{
    HwContextTracker hw;
    const auto ctx = hw.capture(loadRec(0x400100, 0x1000));
    EXPECT_EQ(ctx.get(Attr::TypeInfo), 0u);
    EXPECT_EQ(ctx.get(Attr::LinkOffset), hints::kNoLinkOffset);
    EXPECT_EQ(ctx.get(Attr::RefForm), 0u);
}

TEST(HwState, ResetClearsEverything)
{
    HwContextTracker hw;
    hw.update(branchRec(true));
    hw.update(loadRec(0x400100, 0x1000, 5));
    hw.reset();
    EXPECT_EQ(hw.branchHistory(), 0u);
    const auto ctx = hw.capture(loadRec(0x400104, 0x2000));
    EXPECT_EQ(ctx.get(Attr::PrevData), 0u);
}

TEST(HwState, ComputeDoesNotTouchState)
{
    HwContextTracker hw;
    hw.update(loadRec(0x400100, 0x1000, 5));
    TraceRecord compute;
    compute.kind = InstKind::Compute;
    hw.update(compute);
    const auto ctx = hw.capture(loadRec(0x400104, 0x2000));
    EXPECT_EQ(ctx.get(Attr::PrevData), 5u);
}

} // namespace
} // namespace csp::trace
