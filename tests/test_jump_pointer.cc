/** @file Unit tests for the jump-pointer (dependence-based)
 *  prefetcher. */

#include <gtest/gtest.h>

#include <vector>

#include "prefetch/jump_pointer.h"
#include "trace/context.h"

namespace csp::prefetch {
namespace {

class JumpPointerTest : public ::testing::Test
{
  protected:
    /** A pointer-chasing load: returns @p pointee as its value. */
    AccessInfo
    chase(Addr pc, Addr vaddr, Addr pointee)
    {
        AccessInfo info;
        info.pc = pc;
        info.vaddr = vaddr;
        info.line_addr = alignDown(vaddr, 64);
        info.loaded_value = pointee;
        info.context = &ctx;
        return info;
    }

    /** Walk a stored chain once from its head. */
    void
    walkChain(JumpPointerPrefetcher &pf, const std::vector<Addr> &chain,
              Addr pc = 0x400)
    {
        for (std::size_t i = 0; i < chain.size(); ++i) {
            const Addr next =
                i + 1 < chain.size() ? chain[i + 1] : 0;
            out.clear();
            pf.observe(chase(pc, chain[i], next), out);
        }
    }

    JumpPointerConfig config;
    trace::ContextSnapshot ctx;
    std::vector<PrefetchRequest> out;
};

TEST_F(JumpPointerTest, LearnsPointersAndChasesChain)
{
    JumpPointerPrefetcher pf(config);
    const std::vector<Addr> chain = {0x10000, 0x93000, 0x5a000,
                                     0x21000, 0x77000};
    walkChain(pf, chain); // trains pointers + producer confidence
    // Second traversal: from node 0 the predictor should chase ahead.
    out.clear();
    pf.observe(chase(0x400, chain[0], chain[1]), out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].addr, chain[1]);
    ASSERT_GE(out.size(), 2u);
    EXPECT_EQ(out[1].addr, chain[2]);
}

TEST_F(JumpPointerTest, ChainDepthBounded)
{
    config.chain_depth = 2;
    JumpPointerPrefetcher pf(config);
    const std::vector<Addr> chain = {0x10000, 0x93000, 0x5a000,
                                     0x21000, 0x77000};
    walkChain(pf, chain);
    out.clear();
    pf.observe(chase(0x400, chain[0], chain[1]), out);
    EXPECT_LE(out.size(), 2u);
}

TEST_F(JumpPointerTest, NonChasingLoadsNeverTrigger)
{
    JumpPointerPrefetcher pf(config);
    // Strided loads returning data values (not addresses that get
    // dereferenced next): no dependence ever fires.
    for (int i = 0; i < 100; ++i) {
        out.clear();
        pf.observe(chase(0x400, 0x10000 + i * 64, 0xdead0000), out);
    }
    EXPECT_TRUE(out.empty());
}

TEST_F(JumpPointerTest, StoresIgnored)
{
    JumpPointerPrefetcher pf(config);
    AccessInfo info = chase(0x400, 0x10000, 0x93000);
    info.is_store = true;
    pf.observe(info, out);
    EXPECT_EQ(pf.livePointers(), 0u);
}

TEST_F(JumpPointerTest, PointerTableTracksLatestPointee)
{
    JumpPointerPrefetcher pf(config);
    const std::vector<Addr> chain = {0x10000, 0x93000, 0x5a000,
                                     0x21000};
    walkChain(pf, chain);
    // Relink node 0 to a different successor; the chase must follow
    // the new pointer.
    out.clear();
    pf.observe(chase(0x400, chain[0], 0x44000), out);
    pf.observe(chase(0x400, 0x44000, 0), out);
    out.clear();
    pf.observe(chase(0x400, chain[0], 0x44000), out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].addr, 0x44000u);
}

TEST_F(JumpPointerTest, ConfidenceRequiredBeforeChasing)
{
    JumpPointerPrefetcher pf(config);
    // A single dependence observation is not enough.
    out.clear();
    pf.observe(chase(0x400, 0x10000, 0x93000), out);
    pf.observe(chase(0x400, 0x93000, 0x5a000), out);
    out.clear();
    pf.observe(chase(0x400, 0x10000, 0x93000), out);
    EXPECT_TRUE(out.empty()); // confidence 1 < threshold 2
}

} // namespace
} // namespace csp::prefetch
