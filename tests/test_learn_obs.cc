/** @file Learning-observatory contract tests: the LearningRecorder's
 *  distilled counters are internally consistent, the learn.json export
 *  parses and validates as csp-learn-v1, snapshot capture is
 *  byte-identical whether runs execute serially or on a thread pool,
 *  and the csplearn report renders deterministically (golden text). */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "diff/csp_diff.h"
#include "diff/learn_report.h"
#include "obs/learning.h"
#include "obs/run_observer.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace csp {
namespace {

trace::TraceBuffer
makeTrace(std::uint64_t scale = 20000)
{
    workloads::WorkloadParams params;
    params.scale = scale;
    params.seed = 1;
    return workloads::Registry::builtin().create("list")->generate(
        params);
}

/** One observed context run; returns the recorder after finish(). */
std::unique_ptr<obs::LearningRecorder>
observedRun(const trace::TraceBuffer &trace,
            std::uint64_t snapshot_every)
{
    SystemConfig config;
    obs::LearningRecorder::Options opts;
    opts.snapshot_every = snapshot_every;
    opts.top_k = 8;
    auto recorder =
        std::make_unique<obs::LearningRecorder>(opts);
    obs::RunObserver observer;
    observer.learn = recorder.get();
    auto prefetcher = sim::makePrefetcher("context", config);
    sim::Simulator simulator(config);
    simulator.setObserver(&observer);
    simulator.run(trace, *prefetcher);
    return recorder;
}

std::string
learnJson(const obs::LearningRecorder &recorder)
{
    std::ostringstream out;
    recorder.writeLearnJson(out, "", "context");
    return out.str();
}

TEST(LearningRecorder, SnapshotSeriesIsConsistent)
{
    const trace::TraceBuffer trace = makeTrace();
    const auto recorder = observedRun(trace, 4000);
    const auto &snapshots = recorder->snapshots();
    // Periodic snapshots plus the final one finish() captures.
    ASSERT_GE(snapshots.size(), 2u);
    std::uint64_t last_lookup = 0;
    for (const auto &stored : snapshots) {
        const obs::LearningSnapshot &snap = stored.snap;
        EXPECT_GT(snap.lookup, last_lookup);
        last_lookup = snap.lookup;
        EXPECT_GE(snap.epsilon, 0.0);
        EXPECT_LE(snap.epsilon, 1.0);
        EXPECT_GE(snap.accuracy, 0.0);
        EXPECT_LE(snap.accuracy, 1.0);
        EXPECT_LE(snap.cst_live_entries, snap.cst_entries);
        EXPECT_LE(snap.top_contexts.size(), 8u);
        for (const obs::SnapshotContext &ctx : snap.top_contexts) {
            ASSERT_LE(ctx.n_links, obs::kMaxLearnLinks);
            for (unsigned l = 0; l < ctx.n_links; ++l) {
                EXPECT_NE(ctx.deltas[l], 0);
                EXPECT_GE(ctx.scores[l], -128);
                EXPECT_LE(ctx.scores[l], 127);
            }
        }
    }
    EXPECT_GE(recorder->entropy(), 0.0);
    EXPECT_LE(recorder->entropy(), 1.0);
    EXPECT_EQ(snapshots.back().cumulative_reward,
              recorder->cumulativeReward());
}

TEST(LearningRecorder, LearnJsonParsesAndValidates)
{
    const trace::TraceBuffer trace = makeTrace();
    const auto recorder = observedRun(trace, 4000);
    const std::string text = learnJson(*recorder);

    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(diff::parseJsonFlat(text, doc, &error)) << error;
    EXPECT_TRUE(diff::isLearnDoc(doc, &error)) << error;

    const diff::FlatValue *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->text, "csp-learn-v1");
    const diff::FlatValue *probes = doc.find("learn.cst.probes");
    ASSERT_NE(probes, nullptr);
    EXPECT_GT(probes->number, 0.0);
    const diff::FlatValue *hits = doc.find("learn.cst.probe_hits");
    ASSERT_NE(hits, nullptr);
    EXPECT_LE(hits->number, probes->number);
    ASSERT_NE(doc.find("snapshots.0.lookup"), nullptr);
    ASSERT_NE(doc.find("snapshots.0.top_contexts.0.key"), nullptr);
}

TEST(LearningRecorder, SnapshotsByteIdenticalSerialVsThreadPool)
{
    // The cspsim --jobs contract extended to the learning observatory:
    // per-run recorders never share state, so four concurrent observed
    // runs produce learn.json files byte-identical to a serial run.
    const trace::TraceBuffer trace = makeTrace(12000);
    const std::string serial =
        learnJson(*observedRun(trace, 3000));
    ASSERT_FALSE(serial.empty());

    std::vector<std::string> parallel(4);
    {
        ThreadPool pool(4);
        for (std::size_t i = 0; i < parallel.size(); ++i) {
            pool.submit([&trace, &parallel, i] {
                parallel[i] = learnJson(*observedRun(trace, 3000));
            });
        }
        pool.wait();
    }
    for (std::size_t i = 0; i < parallel.size(); ++i)
        EXPECT_EQ(parallel[i], serial) << "run " << i;
}

TEST(LearningRecorder, AttachingRecorderNeverChangesSimResults)
{
    const trace::TraceBuffer trace = makeTrace();
    SystemConfig config;
    const auto run = [&](bool observed) {
        obs::LearningRecorder recorder;
        obs::RunObserver observer;
        observer.learn = &recorder;
        auto prefetcher = sim::makePrefetcher("context", config);
        sim::Simulator simulator(config);
        if (observed)
            simulator.setObserver(&observer);
        return simulator.run(trace, *prefetcher);
    };
    const sim::RunStats plain = run(false);
    const sim::RunStats observed = run(true);
    EXPECT_EQ(plain.instructions, observed.instructions);
    EXPECT_EQ(plain.cycles, observed.cycles);
    EXPECT_EQ(plain.l1_misses, observed.l1_misses);
    EXPECT_EQ(plain.l2_demand_misses, observed.l2_demand_misses);
    EXPECT_EQ(plain.hierarchy.prefetches_issued,
              observed.hierarchy.prefetches_issued);
    for (std::size_t c = 0; c < plain.classes.size(); ++c)
        EXPECT_EQ(plain.classes[c], observed.classes[c]);
}

// Golden csplearn rendering over a small hand-written learn.json: the
// report text is part of the tool's contract (deterministic, diffable
// across runs), so any change here is a deliberate format change.
const char *const kGoldenLearnJson = R"({
  "schema":"csp-learn-v1",
  "manifest":{"schema":"csp-run-manifest-v1","seed":7,
              "workloads":"list"},
  "prefetcher":"context",
  "learn":{
    "snapshot_every":100,"top_k":2,
    "cst":{"probes":200,"probe_hits":150,"insert_attempts":100,
           "inserts":80,"duplicates":10,"new_entries":40,
           "entry_evictions":2,"link_evictions":20,
           "tag_conflicts":2},
    "policy":{"selections":200,"real":120,"shadow":50,
              "explorations":12,"epsilon_updates":180,
              "epsilon":0.055,"accuracy":0.5,"entropy":0.25},
    "reward":{"cumulative":3000,"positive":90,"negative":30,
              "expiries":15}},
  "snapshots":[
    {"lookup":100,"cycle":1000,"epsilon":0.2,"accuracy":0.3,
     "entropy":0.8,"cumulative_reward":700,"explorations":5,
     "associations":50,"pq_hits":30,"pq_expiries":5,
     "cst_live_entries":20,"cst_entries":512,
     "top_contexts":[{"key":11,"churn":1,
                      "links":[{"delta":8,"score":90}]}]},
    {"lookup":200,"cycle":2100,"epsilon":0.055,"accuracy":0.5,
     "entropy":0.25,"cumulative_reward":3000,"explorations":12,
     "associations":90,"pq_hits":80,"pq_expiries":15,
     "cst_live_entries":40,"cst_entries":512,
     "top_contexts":[{"key":11,"churn":3,
                      "links":[{"delta":8,"score":127},
                               {"delta":16,"score":40}]},
                     {"key":42,"churn":0,
                      "links":[{"delta":-4,"score":12}]}]}]})";

TEST(LearnReport, GoldenRendering)
{
    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(
        diff::parseJsonFlat(kGoldenLearnJson, doc, &error)) << error;

    std::ostringstream out;
    ASSERT_TRUE(diff::renderLearnReport(doc, "golden.json", nullptr,
                                        "", out, &error))
        << error;
    const std::string expected =
        "== golden.json ==\n"
        "prefetcher context   workload list   seed 7\n"
        "learning curve (2 snapshots)\n"
        "        lookup   epsilon  accuracy   entropy  cum_reward"
        "   explore  cst_live\n"
        "           100    0.2000    0.3000    0.8000         700"
        "         5        20\n"
        "           200    0.0550    0.5000    0.2500        3000"
        "        12        40\n"
        "  epsilon  █▁\n"
        "  accuracy ▁█\n"
        "  entropy  █▁\n"
        "convergence\n"
        "  epsilon  0.2000 -> 0.0550  (falling)\n"
        "  accuracy 0.3000 -> 0.5000  (rising)\n"
        "  entropy  0.8000 -> 0.2500  (falling)\n"
        "  verdict: converging: accuracy up, exploration and entropy "
        "decaying\n"
        "cst health\n"
        "  probes                     200   hit rate       0.7500\n"
        "  insert attempts            100   duplicate rate 0.1000\n"
        "  links stored                80   link churn     0.2500\n"
        "  hash collisions              2   conflict rate  0.0200\n"
        "  entry evictions              2   occupancy      0.0781\n"
        "top contexts (final snapshot)\n"
        "  ctx         11  churn   3  links 8:127 16:40\n"
        "  ctx         42  churn   0  links -4:12\n";
    EXPECT_EQ(out.str(), expected);

    // Rendering is deterministic: a second pass is byte-identical.
    std::ostringstream again;
    ASSERT_TRUE(diff::renderLearnReport(doc, "golden.json", nullptr,
                                        "", again, &error));
    EXPECT_EQ(again.str(), out.str());
}

TEST(LearnReport, CompareModeRendersBothAndDeltas)
{
    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(
        diff::parseJsonFlat(kGoldenLearnJson, doc, &error)) << error;
    std::ostringstream out;
    ASSERT_TRUE(diff::renderLearnReport(doc, "a.json", &doc, "b.json",
                                        out, &error))
        << error;
    const std::string text = out.str();
    EXPECT_NE(text.find("== a.json =="), std::string::npos);
    EXPECT_NE(text.find("== b.json =="), std::string::npos);
    EXPECT_NE(text.find("comparison"), std::string::npos);
    EXPECT_NE(text.find("final epsilon"), std::string::npos);
    EXPECT_NE(text.find("cumulative reward"), std::string::npos);
}

TEST(LearnReport, RejectsNonLearnDocuments)
{
    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(
        diff::parseJsonFlat(R"({"schema":"other"})", doc, &error));
    std::ostringstream out;
    EXPECT_FALSE(diff::renderLearnReport(doc, "x", nullptr, "", out,
                                         &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace csp
