/** @file Unit tests for the Markov prefetcher. */

#include <gtest/gtest.h>

#include "prefetch/markov.h"
#include "trace/context.h"

namespace csp::prefetch {
namespace {

class MarkovTest : public ::testing::Test
{
  protected:
    AccessInfo
    missAt(Addr vaddr)
    {
        AccessInfo info;
        info.pc = 0x400;
        info.vaddr = vaddr;
        info.line_addr = alignDown(vaddr, 64);
        info.l1_miss = true;
        info.context = &ctx;
        return info;
    }

    MarkovConfig config;
    trace::ContextSnapshot ctx;
    std::vector<PrefetchRequest> out;
};

TEST_F(MarkovTest, LearnsSuccessorTransitions)
{
    MarkovPrefetcher pf(config);
    // Repeating sequence A -> B -> C.
    const Addr seq[] = {0x1000, 0x9000, 0x5000};
    for (int rep = 0; rep < 5; ++rep) {
        for (Addr a : seq) {
            out.clear();
            pf.observe(missAt(a), out);
        }
    }
    // After the last C, observing A predicts B.
    out.clear();
    pf.observe(missAt(0x1000), out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].addr, 0x9000u);
}

TEST_F(MarkovTest, StrongestSuccessorRanksFirst)
{
    MarkovPrefetcher pf(config);
    // A -> B three times, A -> C once.
    for (int i = 0; i < 3; ++i) {
        pf.observe(missAt(0x1000), out);
        pf.observe(missAt(0x9000), out);
    }
    pf.observe(missAt(0x1000), out);
    pf.observe(missAt(0x5000), out);
    out.clear();
    pf.observe(missAt(0x1000), out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].addr, 0x9000u);
}

TEST_F(MarkovTest, HitsAreNotTrained)
{
    MarkovPrefetcher pf(config);
    for (int rep = 0; rep < 5; ++rep) {
        AccessInfo a = missAt(0x1000);
        a.l1_miss = false;
        pf.observe(a, out);
        AccessInfo b = missAt(0x9000);
        b.l1_miss = false;
        pf.observe(b, out);
    }
    out.clear();
    pf.observe(missAt(0x1000), out);
    EXPECT_TRUE(out.empty());
}

TEST_F(MarkovTest, SelfTransitionIgnored)
{
    MarkovPrefetcher pf(config);
    for (int i = 0; i < 10; ++i)
        pf.observe(missAt(0x1000), out);
    out.clear();
    pf.observe(missAt(0x1000), out);
    EXPECT_TRUE(out.empty());
}

TEST_F(MarkovTest, DegreeBoundsPredictions)
{
    config.degree = 1;
    MarkovPrefetcher pf(config);
    // A followed by many different successors.
    for (Addr succ : {0x2000, 0x3000, 0x4000, 0x5000}) {
        pf.observe(missAt(0x1000), out);
        pf.observe(missAt(succ), out);
    }
    out.clear();
    pf.observe(missAt(0x1000), out);
    EXPECT_LE(out.size(), 1u);
}

TEST_F(MarkovTest, WeakSuccessorsDecayBeforeReplacement)
{
    MarkovConfig small = config;
    small.successors = 2;
    MarkovPrefetcher pf(small);
    // Establish strong A -> B.
    for (int i = 0; i < 4; ++i) {
        pf.observe(missAt(0x1000), out);
        pf.observe(missAt(0x9000), out);
    }
    // One-off A -> C must not immediately displace B.
    pf.observe(missAt(0x1000), out);
    pf.observe(missAt(0x5000), out);
    out.clear();
    pf.observe(missAt(0x1000), out);
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].addr, 0x9000u);
}

} // namespace
} // namespace csp::prefetch
