/** @file Memory-observatory contract tests: the exact stack-distance /
 *  shadow-cache models match brute-force references bit for bit (on
 *  randomized streams and on a captured mcf replay), the 3C+pollution
 *  classes sum exactly to the run's miss counters, the mem.json export
 *  parses and validates as csp-mem-v1 and is byte-identical whether
 *  runs execute serially or on a thread pool, attaching the recorder
 *  never changes simulated results, the registry subtree mirrors the
 *  recorder's counters, and the cspmem report renders deterministically
 *  (golden text). */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/stats_registry.h"
#include "core/thread_pool.h"
#include "diff/csp_diff.h"
#include "diff/mem_report.h"
#include "obs/mem_recorder.h"
#include "obs/run_observer.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace csp {
namespace {

// ---------------------------------------------------------------------
// Brute-force naive references. Deliberately the dumbest possible
// implementations — an MRU-ordered vector for stack distance, a per-set
// recency scan for the shadow cache — so the production models (Fenwick
// tree with compaction, flat set-associative array) are checked against
// code with no shared structure.

/** O(n) LRU stack distance: an MRU-first vector of distinct lines. */
class BruteStack
{
  public:
    std::uint64_t onAccess(Addr line)
    {
        auto it = std::find(mru_.begin(), mru_.end(), line);
        std::uint64_t distance = obs::StackDistance::kNoReuse;
        if (it != mru_.end()) {
            distance =
                static_cast<std::uint64_t>(std::distance(mru_.begin(), it));
            mru_.erase(it);
        }
        mru_.insert(mru_.begin(), line);
        return distance;
    }

    std::uint64_t liveLines() const { return mru_.size(); }

  private:
    std::vector<Addr> mru_;
};

/** O(ways) set-associative LRU replay: per-set MRU-first tag vectors. */
class BruteShadow
{
  public:
    explicit BruteShadow(const CacheConfig &config)
        : ways_(config.ways),
          line_bytes_(config.line_bytes),
          sets_(config.sets()),
          mru_(config.sets())
    {}

    bool access(Addr line_addr)
    {
        const std::uint64_t set = (line_addr / line_bytes_) % sets_;
        const Addr tag = (line_addr / line_bytes_) / sets_;
        auto &ways = mru_[set];
        auto it = std::find(ways.begin(), ways.end(), tag);
        const bool hit = it != ways.end();
        if (hit)
            ways.erase(it);
        else if (ways.size() == ways_)
            ways.pop_back();
        ways.insert(ways.begin(), tag);
        return hit;
    }

  private:
    std::size_t ways_;
    std::uint64_t line_bytes_;
    std::uint64_t sets_;
    std::vector<std::vector<Addr>> mru_;
};

/** The 3C+pollution classifier, restated from its DESIGN.md definition
 *  over the brute-force models. */
class NaiveLevel
{
  public:
    explicit NaiveLevel(const CacheConfig &config)
        : capacity_lines_(config.size_bytes / config.line_bytes),
          shadow_(config)
    {}

    obs::LevelModel::Result onAccess(Addr line_addr, bool real_miss,
                                     bool line_present)
    {
        obs::LevelModel::Result result;
        result.first_touch = seen_.insert(line_addr).second;
        result.reuse_distance = stack_.onAccess(line_addr);
        const bool shadow_hit = shadow_.access(line_addr);
        if (!real_miss)
            return result;
        if (result.first_touch)
            result.cls = obs::MissClass::Compulsory;
        else if (shadow_hit && !line_present)
            result.cls = obs::MissClass::Pollution;
        else if (result.reuse_distance < capacity_lines_)
            result.cls = obs::MissClass::Conflict;
        else
            result.cls = obs::MissClass::Capacity;
        ++classes_[static_cast<std::size_t>(result.cls)];
        return result;
    }

    std::uint64_t classCount(obs::MissClass cls) const
    {
        return classes_[static_cast<std::size_t>(cls)];
    }

  private:
    std::uint64_t capacity_lines_;
    std::unordered_set<Addr> seen_;
    BruteStack stack_;
    BruteShadow shadow_;
    std::uint64_t classes_[static_cast<std::size_t>(
        obs::MissClass::Count)] = {};
};

constexpr obs::MissClass kAllClasses[] = {
    obs::MissClass::Compulsory,
    obs::MissClass::Pollution,
    obs::MissClass::Conflict,
    obs::MissClass::Capacity,
};

trace::TraceBuffer
makeTrace(const std::string &workload, std::uint64_t scale = 20000)
{
    workloads::WorkloadParams params;
    params.scale = scale;
    params.seed = 1;
    return workloads::Registry::builtin().create(workload)->generate(
        params);
}

/** One mem-observed run; returns the recorder after the run. */
struct ObservedMemRun
{
    std::unique_ptr<obs::MemRecorder> recorder;
    sim::RunStats stats;
};

ObservedMemRun
observedRun(const trace::TraceBuffer &trace,
            const std::string &prefetcher_name,
            std::uint64_t queue_sample_every = 0)
{
    SystemConfig config;
    obs::MemRecorder::Options opts;
    opts.queue_sample_every = queue_sample_every;
    ObservedMemRun run;
    run.recorder = std::make_unique<obs::MemRecorder>(config.memory,
                                                      opts, nullptr);
    obs::RunObserver observer;
    observer.mem = run.recorder.get();
    auto prefetcher = sim::makePrefetcher(prefetcher_name, config);
    sim::Simulator simulator(config);
    simulator.setObserver(&observer);
    run.stats = simulator.run(trace, *prefetcher);
    return run;
}

std::string
memJson(const obs::MemRecorder &recorder)
{
    std::ostringstream out;
    recorder.writeMemJson(out, "", "context");
    return out.str();
}

// ---------------------------------------------------------------------
// Model-level differentials on randomized streams.

TEST(StackDistance, MatchesBruteForceAcrossCompactions)
{
    obs::StackDistance fast;
    BruteStack naive;
    std::mt19937_64 rng(7);
    // Enough accesses to force index-space compactions (the Fenwick
    // index space starts at 4096 positions) and enough distinct lines
    // to force the compaction to grow the index space.
    for (std::uint64_t i = 0; i < 20000; ++i) {
        const Addr line = (rng() % 6000) * 64;
        ASSERT_EQ(fast.onAccess(line), naive.onAccess(line))
            << "access " << i;
    }
    EXPECT_EQ(fast.liveLines(), naive.liveLines());
    EXPECT_GT(fast.compactions(), 0u);
}

TEST(ShadowCache, MatchesBruteForceLru)
{
    const CacheConfig config{4096, 4, 64, 1, 4}; // 16 sets x 4 ways
    obs::ShadowCache fast(config);
    BruteShadow naive(config);
    std::mt19937_64 rng(11);
    for (std::uint64_t i = 0; i < 50000; ++i) {
        // Skewed so some sets stay hot (evictions) and tags collide.
        const Addr line = (rng() % 512) * 64 + (rng() % 4) * 65536;
        ASSERT_EQ(fast.access(line), naive.access(line))
            << "access " << i;
    }
}

TEST(LevelModel, MatchesNaiveReferenceOnRandomStream)
{
    const CacheConfig config{8192, 2, 64, 1, 4}; // 64 ways-worth of lines
    obs::LevelModel fast(config);
    NaiveLevel naive(config);
    std::mt19937_64 rng(13);
    for (std::uint64_t i = 0; i < 30000; ++i) {
        const Addr line = (rng() % 5000) * 64;
        const bool real_miss = (rng() & 3) != 0;
        // In-flight (MSHR-merge) misses still hold the line: the
        // pollution rule must be skipped for them.
        const bool line_present = real_miss && (rng() & 7) == 0;
        const auto a = fast.onAccess(line, real_miss, line_present);
        const auto b = naive.onAccess(line, real_miss, line_present);
        ASSERT_EQ(a.first_touch, b.first_touch) << "access " << i;
        ASSERT_EQ(a.reuse_distance, b.reuse_distance) << "access " << i;
        ASSERT_EQ(a.cls, b.cls) << "access " << i;
    }
    std::uint64_t total = 0;
    for (obs::MissClass cls : kAllClasses) {
        EXPECT_EQ(fast.classCount(cls), naive.classCount(cls));
        total += fast.classCount(cls);
    }
    EXPECT_EQ(total, fast.classifiedTotal());
    EXPECT_GT(fast.classCount(obs::MissClass::Conflict), 0u);
    EXPECT_GT(fast.classCount(obs::MissClass::Capacity), 0u);
    EXPECT_GT(fast.compactions(), 0u);
}

// ---------------------------------------------------------------------
// End-to-end differential: a captured mcf replay through the naive
// reference vs the production recorder attached to a live run.

/** Tap that records the raw event stream for offline replay. */
class CaptureObserver final : public obs::MemObserver
{
  public:
    void onDemandAccess(const obs::MemAccessEvent &event) override
    {
        accesses.push_back(event);
    }
    void onFill(const obs::MemFillEvent &event) override
    {
        fills.push_back(event);
    }
    void onQueueSample(const obs::MemQueueSample &) override {}

    std::vector<obs::MemAccessEvent> accesses;
    std::vector<obs::MemFillEvent> fills;
};

TEST(MemRecorder, ClassifierMatchesNaiveReferenceOnMcfReplay)
{
    const trace::TraceBuffer trace = makeTrace("mcf");
    SystemConfig config;

    // Live run with the production recorder attached.
    const ObservedMemRun live = observedRun(trace, "context");

    // Second run of the same cell with a capture tap: observers never
    // perturb the simulation, so this records the same event stream the
    // recorder saw.
    CaptureObserver capture;
    {
        obs::RunObserver observer;
        observer.mem = &capture;
        auto prefetcher = sim::makePrefetcher("context", config);
        sim::Simulator simulator(config);
        simulator.setObserver(&observer);
        simulator.run(trace, *prefetcher);
    }
    ASSERT_FALSE(capture.accesses.empty());
    ASSERT_FALSE(capture.fills.empty());

    // Replay the captured demand stream through the naive reference,
    // routing levels exactly as the recorder does: L1 sees every demand
    // access, L2 sees the full L1 misses, and only Memory-served
    // accesses classify as L2 misses.
    NaiveLevel naive_l1(config.memory.l1d);
    NaiveLevel naive_l2(config.memory.l2);
    for (const obs::MemAccessEvent &event : capture.accesses) {
        const bool l1_miss = event.kind != obs::MemAccessKind::L1Hit;
        const bool l1_present =
            event.kind == obs::MemAccessKind::L1Hit ||
            event.kind == obs::MemAccessKind::L1InFlight;
        naive_l1.onAccess(event.line_addr, l1_miss, l1_present);
        if (event.kind == obs::MemAccessKind::L2Hit ||
            event.kind == obs::MemAccessKind::Memory) {
            naive_l2.onAccess(event.line_addr,
                              event.kind == obs::MemAccessKind::Memory,
                              /*line_present=*/false);
        }
    }

    for (obs::MissClass cls : kAllClasses) {
        EXPECT_EQ(live.recorder->l1Model().classCount(cls),
                  naive_l1.classCount(cls))
            << "l1 " << obs::missClassName(cls);
        EXPECT_EQ(live.recorder->l2Model().classCount(cls),
                  naive_l2.classCount(cls))
            << "l2 " << obs::missClassName(cls);
    }
}

TEST(MemRecorder, ClassesSumExactlyToRunMissCounters)
{
    // The taxonomy's core accounting identity, on a real workload for
    // both a polluting prefetcher and the baseline: every classified
    // L1 miss is one of the run's l1_misses, every classified L2 miss
    // one of its l2_demand_misses — no double counting, no leakage.
    const trace::TraceBuffer trace = makeTrace("mcf");
    for (const char *prefetcher : {"context", "stride", "none"}) {
        const ObservedMemRun run = observedRun(trace, prefetcher);
        EXPECT_EQ(run.recorder->l1Classified(), run.stats.l1_misses)
            << prefetcher;
        EXPECT_EQ(run.recorder->l2Classified(),
                  run.stats.l2_demand_misses)
            << prefetcher;
        EXPECT_EQ(run.recorder->l1Model().accesses(),
                  run.stats.demand_accesses)
            << prefetcher;
    }
}

TEST(MemRecorder, AttachingRecorderNeverChangesSimResults)
{
    const trace::TraceBuffer trace = makeTrace("mcf");
    SystemConfig config;
    const auto run = [&](bool observed) {
        obs::MemRecorder recorder(config.memory);
        obs::RunObserver observer;
        observer.mem = &recorder;
        auto prefetcher = sim::makePrefetcher("context", config);
        sim::Simulator simulator(config);
        if (observed)
            simulator.setObserver(&observer);
        return simulator.run(trace, *prefetcher);
    };
    const sim::RunStats plain = run(false);
    const sim::RunStats observed = run(true);
    EXPECT_EQ(plain.instructions, observed.instructions);
    EXPECT_EQ(plain.cycles, observed.cycles);
    EXPECT_EQ(plain.l1_misses, observed.l1_misses);
    EXPECT_EQ(plain.l2_demand_misses, observed.l2_demand_misses);
    EXPECT_EQ(plain.hierarchy.prefetches_issued,
              observed.hierarchy.prefetches_issued);
    for (std::size_t c = 0; c < plain.classes.size(); ++c)
        EXPECT_EQ(plain.classes[c], observed.classes[c]);
}

// ---------------------------------------------------------------------
// Export and registry contracts.

TEST(MemRecorder, MemJsonParsesAndValidates)
{
    const trace::TraceBuffer trace = makeTrace("mcf");
    const ObservedMemRun run =
        observedRun(trace, "context", /*queue_sample_every=*/2000);
    const std::string text = memJson(*run.recorder);

    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(diff::parseJsonFlat(text, doc, &error)) << error;
    EXPECT_TRUE(diff::isMemDoc(doc, &error)) << error;

    const diff::FlatValue *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->text, "csp-mem-v1");

    // The export repeats the accounting identity: per level, the four
    // class counters sum to the classified-miss count.
    for (const char *level : {"l1", "l2"}) {
        const std::string prefix = std::string("mem.") + level;
        const diff::FlatValue *classified =
            doc.find(prefix + ".classified");
        ASSERT_NE(classified, nullptr) << level;
        double sum = 0.0;
        for (const char *cls :
             {"compulsory", "pollution", "conflict", "capacity"}) {
            const diff::FlatValue *v =
                doc.find(prefix + ".classes." + cls);
            ASSERT_NE(v, nullptr) << level << ' ' << cls;
            sum += v->number;
        }
        EXPECT_EQ(sum, classified->number) << level;
    }
    ASSERT_NE(doc.find("mem.l1.reuse.p50"), nullptr);
    ASSERT_NE(doc.find("mem.l1.sets.top.0.set"), nullptr);
    ASSERT_NE(doc.find("mem.pc.0.pc"), nullptr);
    ASSERT_NE(doc.find("mem.pollution.l2.attributed"), nullptr);
    ASSERT_NE(doc.find("mem.timeline.0.access"), nullptr);
    EXPECT_GT(run.recorder->queueSamples(), 0u);
}

TEST(MemRecorder, MemJsonByteIdenticalSerialVsThreadPool)
{
    // The cspsim --jobs contract extended to the mem observatory:
    // per-run recorders never share state, so four concurrent observed
    // runs produce mem.json files byte-identical to a serial run.
    const trace::TraceBuffer trace = makeTrace("mcf", 12000);
    const std::string serial =
        memJson(*observedRun(trace, "context", 2000).recorder);
    ASSERT_FALSE(serial.empty());

    std::vector<std::string> parallel(4);
    {
        ThreadPool pool(4);
        for (std::size_t i = 0; i < parallel.size(); ++i) {
            pool.submit([&trace, &parallel, i] {
                parallel[i] =
                    memJson(*observedRun(trace, "context", 2000).recorder);
            });
        }
        pool.wait();
    }
    for (std::size_t i = 0; i < parallel.size(); ++i)
        EXPECT_EQ(parallel[i], serial) << "run " << i;
}

TEST(MemRecorder, RegistryStatsMirrorRecorderCounters)
{
    const trace::TraceBuffer trace = makeTrace("mcf");
    const ObservedMemRun run = observedRun(trace, "context", 2000);
    stats::Registry registry;
    run.recorder->registerStats(registry);
    const stats::Report report = registry.report("mem");

    for (const char *level : {"l1", "l2"}) {
        const obs::LevelModel &model = level[1] == '1'
                                           ? run.recorder->l1Model()
                                           : run.recorder->l2Model();
        for (obs::MissClass cls : kAllClasses) {
            const std::string name = std::string("mem.class.") + level +
                                     '.' + obs::missClassName(cls);
            ASSERT_TRUE(report.contains(name)) << name;
            EXPECT_EQ(report.value(name),
                      static_cast<double>(model.classCount(cls)))
                << name;
        }
        const std::string shadow =
            std::string("mem.shadow.") + level + ".hits";
        EXPECT_EQ(report.value(shadow),
                  static_cast<double>(model.shadowHits()));
    }
    EXPECT_TRUE(report.contains("mem.reuse.l1"));
    EXPECT_TRUE(report.contains("mem.sets.l2.evictions"));
    EXPECT_TRUE(report.contains("mem.pollution.l2.attributed"));
    EXPECT_EQ(report.value("mem.timeline.samples"),
              static_cast<double>(run.recorder->queueSamples()));
}

// ---------------------------------------------------------------------
// cspmem rendering (golden text over a small hand-written mem.json).

const char *const kGoldenMemJson = R"({
  "schema":"csp-mem-v1",
  "manifest":{"schema":"csp-run-manifest-v1","seed":7,
              "workloads":"mcf"},
  "prefetcher":"context",
  "mem":{
    "interval":100,"accesses":1000,
    "l1":{"accesses":1000,"classified":400,
          "classes":{"compulsory":100,"pollution":40,"conflict":60,
                     "capacity":200},
          "shadow_hits":500,"capacity_lines":1024,
          "reuse":{"count":900,"mean":80.5,"p50":48,"p90":1024,
                   "p99":4096,"buckets":[10,20,30]},
          "sets":{"count":128,"fills_demand":300,"fills_prefetch":100,
                  "evictions":350,
                  "top":[{"set":5,"fills_demand":40,"fills_prefetch":24,
                          "evictions":60,"demand_share":0.625},
                         {"set":9,"fills_demand":30,"fills_prefetch":2,
                          "evictions":30,"demand_share":0.9375}]}},
    "l2":{"accesses":400,"classified":120,
          "classes":{"compulsory":100,"pollution":8,"conflict":2,
                     "capacity":10},
          "shadow_hits":250,"capacity_lines":32768,
          "reuse":{"count":300,"mean":512.0,"p50":256,"p90":8192,
                   "p99":32768,"buckets":[1,2,3]},
          "sets":{"count":2048,"fills_demand":110,"fills_prefetch":90,
                  "evictions":150,
                  "top":[{"set":17,"fills_demand":9,"fills_prefetch":3,
                          "evictions":12,"demand_share":0.75}]}},
    "pc":[{"pc":"0x400100","accesses":600,"l1_misses":300,
           "l2_misses":100,
           "reuse":{"count":550,"mean":90.0,"p50":64,"p90":2048,
                    "p99":8192,"buckets":[5,6]}},
          {"pc":"0x400200","accesses":400,"l1_misses":100,
           "l2_misses":20,
           "reuse":{"count":350,"mean":30.0,"p50":16,"p90":128,
                    "p99":512,"buckets":[7]}}],
    "pc_tracked":2,"pc_other_accesses":0,
    "pollution":{"l1":{"attributed":30,"unattributed":10},
                 "l2":{"attributed":6,"unattributed":2},
                 "pairs_overflow":0,
                 "pairs":[{"level":1,"issuer_pc":"0x400300",
                           "demand_pc":"0x400100","count":25},
                          {"level":2,"issuer_pc":"0x400300",
                           "demand_pc":"0x400200","count":6}]},
    "shadow":{"compactions":3,"l1_live_lines":900,
              "l2_live_lines":700},
    "timeline":[{"access":100,"cycle":1500,"l1_mshr":2,"l2_mshr":5,
                 "dram_backlog":120},
                {"access":200,"cycle":3100,"l1_mshr":4,"l2_mshr":20,
                 "dram_backlog":900}]}})";

TEST(MemReport, GoldenRendering)
{
    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(diff::parseJsonFlat(kGoldenMemJson, doc, &error))
        << error;

    std::ostringstream out;
    ASSERT_TRUE(diff::renderMemReport(doc, "golden.json", nullptr, "",
                                      out, &error))
        << error;
    const std::string text = out.str();
    // Every section of the report renders from the document.
    EXPECT_NE(text.find("== golden.json =="), std::string::npos);
    EXPECT_NE(text.find("prefetcher context"), std::string::npos);
    EXPECT_NE(text.find("miss taxonomy"), std::string::npos);
    EXPECT_NE(text.find("compulsory"), std::string::npos);
    EXPECT_NE(text.find("reuse distance"), std::string::npos);
    EXPECT_NE(text.find("set pressure"), std::string::npos);
    EXPECT_NE(text.find("pollution"), std::string::npos);
    EXPECT_NE(text.find("0x400300"), std::string::npos);
    EXPECT_NE(text.find("hottest demand PCs"), std::string::npos);
    EXPECT_NE(text.find("queue-depth timeline"), std::string::npos);
    EXPECT_NE(text.find("shadow models"), std::string::npos);

    // Rendering is deterministic: a second pass is byte-identical.
    std::ostringstream again;
    ASSERT_TRUE(diff::renderMemReport(doc, "golden.json", nullptr, "",
                                      again, &error));
    EXPECT_EQ(again.str(), text);
}

TEST(MemReport, CompareModeRendersBothAndDeltas)
{
    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(diff::parseJsonFlat(kGoldenMemJson, doc, &error))
        << error;
    std::ostringstream out;
    ASSERT_TRUE(diff::renderMemReport(doc, "a.json", &doc, "b.json",
                                      out, &error))
        << error;
    const std::string text = out.str();
    EXPECT_NE(text.find("== a.json =="), std::string::npos);
    EXPECT_NE(text.find("== b.json =="), std::string::npos);
    EXPECT_NE(text.find("comparison"), std::string::npos);
}

TEST(MemReport, RejectsNonMemDocuments)
{
    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(
        diff::parseJsonFlat(R"({"schema":"other"})", doc, &error));
    std::ostringstream out;
    EXPECT_FALSE(
        diff::renderMemReport(doc, "x", nullptr, "", out, &error));
    EXPECT_FALSE(error.empty());

    diff::FlatDoc learn;
    ASSERT_TRUE(parseJsonFlat(R"({"schema":"csp-learn-v1"})", learn,
                              &error));
    EXPECT_FALSE(diff::isMemDoc(learn, &error));
}

TEST(MemReport, EndToEndRenderFromRealRun)
{
    // A real run's export renders without error and mentions the real
    // class counts — the cspmem tool is a thin shell over this path.
    const trace::TraceBuffer trace = makeTrace("mcf");
    const ObservedMemRun run = observedRun(trace, "context", 2000);
    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(diff::parseJsonFlat(memJson(*run.recorder), doc, &error))
        << error;
    std::ostringstream out;
    ASSERT_TRUE(diff::renderMemReport(doc, "mem.json", nullptr, "", out,
                                      &error))
        << error;
    EXPECT_NE(out.str().find("miss taxonomy"), std::string::npos);
    EXPECT_NE(
        out.str().find(std::to_string(run.recorder->l1Classified())),
        std::string::npos);
}

} // namespace
} // namespace csp
