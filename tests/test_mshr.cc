/** @file Unit tests for the MSHR file. */

#include <gtest/gtest.h>

#include "mem/mshr.h"

namespace csp::mem {
namespace {

TEST(Mshr, StartsAllFree)
{
    MshrFile mshrs(4);
    EXPECT_EQ(mshrs.freeAt(0), 4u);
    EXPECT_EQ(mshrs.availableAt(0), 0u);
}

TEST(Mshr, AllocationConsumesSlot)
{
    MshrFile mshrs(2);
    mshrs.allocate(100);
    EXPECT_EQ(mshrs.freeAt(50), 1u);
    EXPECT_EQ(mshrs.freeAt(100), 2u); // completion frees the slot
}

TEST(Mshr, AvailableAtWaitsForEarliestCompletion)
{
    MshrFile mshrs(2);
    mshrs.allocate(100);
    mshrs.allocate(200);
    EXPECT_EQ(mshrs.availableAt(50), 100u);
    EXPECT_EQ(mshrs.availableAt(150), 150u); // one slot already free
}

TEST(Mshr, AllocateReusesEarliestSlot)
{
    MshrFile mshrs(2);
    mshrs.allocate(100);
    mshrs.allocate(200);
    mshrs.allocate(300); // replaces the slot completing at 100
    EXPECT_EQ(mshrs.availableAt(150), 200u);
}

TEST(Mshr, FreeWithinWindow)
{
    MshrFile mshrs(3);
    mshrs.allocate(100);
    mshrs.allocate(500);
    EXPECT_EQ(mshrs.freeWithin(0, 50), 1u);   // only the idle slot
    EXPECT_EQ(mshrs.freeWithin(0, 100), 2u);  // +slot finishing at 100
    EXPECT_EQ(mshrs.freeWithin(0, 1000), 3u); // all
}

TEST(Mshr, BoundsParallelismUnderSaturation)
{
    MshrFile mshrs(4);
    // Issue 8 fills of 300 cycles back-to-back starting at time 0.
    Cycle now = 0;
    Cycle last_fill = 0;
    for (int i = 0; i < 8; ++i) {
        const Cycle start = mshrs.availableAt(now);
        const Cycle fill = start + 300;
        mshrs.allocate(fill);
        last_fill = fill;
    }
    // Two rounds of 4-way parallelism: the last fill lands at 600.
    EXPECT_EQ(last_fill, 600u);
}

TEST(Mshr, ResetFreesEverything)
{
    MshrFile mshrs(2);
    mshrs.allocate(1000);
    mshrs.allocate(1000);
    mshrs.reset();
    EXPECT_EQ(mshrs.freeAt(0), 2u);
}

TEST(Mshr, SlotsReported)
{
    MshrFile mshrs(20);
    EXPECT_EQ(mshrs.slots(), 20u);
}

} // namespace
} // namespace csp::mem
