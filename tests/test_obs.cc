/** @file Observability-layer contract tests: the per-prefetch lifecycle
 *  classifier reaches every terminal state with the expected counts,
 *  autopsy tables render those counts, the Perfetto trace-event stream
 *  is well-formed, attaching an observer never changes simulation
 *  results (bit-identical sweeps), and the Log2Histogram stat kind
 *  buckets and summarises correctly. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/stats.h"
#include "mem/hierarchy.h"
#include "obs/lifecycle.h"
#include "obs/run_observer.h"
#include "obs/trace_events.h"
#include "sim/experiment.h"

namespace csp {
namespace {

using mem::Hierarchy;
using mem::PrefetchOutcome;
using obs::PrefetchClass;
using obs::PrefetchTracker;

/** Default hierarchy: L1D 64KB/8-way/64B (128 sets, 8KB set stride),
 *  4 MSHRs; L2 2MB/16-way, 20 MSHRs; DRAM 300 cycles. */
MemoryConfig
defaultMemory()
{
    return MemoryConfig{};
}

TEST(LifecycleClassifier, FiveTerminalStatesWithExactCounts)
{
    Hierarchy hierarchy(defaultMemory());
    PrefetchTracker tracker;
    hierarchy.setTracker(&tracker);

    // Timely: prefetch into L1, demand arrives after the fill.
    const Addr timely = 0x40; // set 1
    ASSERT_EQ(hierarchy.prefetch(timely, 0, 0, 0xA0),
              PrefetchOutcome::Issued);
    const auto timely_hit = hierarchy.access(timely, 2000, false, 0xB0);
    EXPECT_TRUE(timely_hit.hit_prefetched_line);
    EXPECT_EQ(tracker.classCount(PrefetchClass::Timely), 1u);

    // Late: demand arrives while the prefetch fill is in flight.
    const Addr late = 0x80; // set 2
    ASSERT_EQ(hierarchy.prefetch(late, 2100, 0, 0xA1),
              PrefetchOutcome::Issued);
    const auto late_hit = hierarchy.access(late, 2110, false, 0xB1);
    EXPECT_TRUE(late_hit.shorter_wait);
    EXPECT_EQ(tracker.classCount(PrefetchClass::Late), 1u);

    // Redundant: prefetch a line a demand already brought in.
    const Addr redundant = 0xC0; // set 3
    hierarchy.access(redundant, 3000, false, 0xB2);
    ASSERT_EQ(hierarchy.prefetch(redundant, 4000, 0, 0xA2),
              PrefetchOutcome::AlreadyHere);
    EXPECT_EQ(tracker.classCount(PrefetchClass::Redundant), 1u);

    // Early: prefetch lands at the LRU position (LIP fill) of L1 set 0,
    // then eight demand misses to the same set displace it unused.
    const Addr early = 0x10000; // set 0
    ASSERT_EQ(hierarchy.prefetch(early, 5000, 0, 0xA3),
              PrefetchOutcome::Issued);
    for (unsigned k = 0; k < 8; ++k) {
        hierarchy.access(0x20000 + static_cast<Addr>(k) * 0x2000,
                         6000 + k * 10, false, 0xB3);
    }
    EXPECT_EQ(tracker.classCount(PrefetchClass::Early), 1u);

    // Useless: prefetched, never referenced, still live at end of run.
    const Addr useless = 0x100; // set 4
    ASSERT_EQ(hierarchy.prefetch(useless, 7000, 0, 0xA4),
              PrefetchOutcome::Issued);
    EXPECT_EQ(tracker.classCount(PrefetchClass::Useless), 0u);
    tracker.finish(8000);
    EXPECT_EQ(tracker.classCount(PrefetchClass::Useless), 1u);

    EXPECT_EQ(tracker.attempts(), 5u);
    EXPECT_EQ(tracker.issued(), 4u);
    EXPECT_EQ(tracker.covered(), 2u); // timely + late
    EXPECT_EQ(tracker.classCount(PrefetchClass::Dropped), 0u);
    // Demand L1 misses: the late merge, the redundant line's fill, and
    // the eight conflict misses.
    EXPECT_EQ(tracker.demandMisses(), 10u);
    EXPECT_DOUBLE_EQ(tracker.accuracy(), 2.0 / 4.0);
    EXPECT_DOUBLE_EQ(tracker.timeliness(), 1.0 / 2.0);
    EXPECT_DOUBLE_EQ(tracker.coverage(), 2.0 / 11.0);
}

TEST(LifecycleClassifier, DroppedUnderMshrPressure)
{
    Hierarchy hierarchy(defaultMemory());
    PrefetchTracker tracker;
    hierarchy.setTracker(&tracker);

    // min_free_mshrs = 4 forbids L1 fills (L1 has exactly 4 MSHRs), so
    // every issue books an L2 MSHR; the backlog eventually exhausts the
    // prefetch headroom and issues start refusing.
    std::uint64_t dropped = 0;
    for (unsigned i = 0; i < 1000; ++i) {
        const Addr addr = 0x100000 + static_cast<Addr>(i) * 64;
        if (hierarchy.prefetch(addr, 0, 4, 0xA5) ==
            PrefetchOutcome::NoMshr) {
            ++dropped;
        }
    }
    EXPECT_GT(dropped, 0u);
    EXPECT_EQ(tracker.classCount(PrefetchClass::Dropped), dropped);
    EXPECT_EQ(tracker.attempts(), 1000u);
    EXPECT_EQ(tracker.issued() + dropped, 1000u);
}

TEST(LifecycleClassifier, AutopsyTablesRenderTheCounts)
{
    Hierarchy hierarchy(defaultMemory());
    PrefetchTracker tracker;
    hierarchy.setTracker(&tracker);

    const Addr line = 0x40;
    ASSERT_EQ(hierarchy.prefetch(line, 0, 0, 0xAA),
              PrefetchOutcome::Issued);
    hierarchy.access(line, 2000, false, 0xBB);
    tracker.finish(3000);

    std::ostringstream csv;
    tracker.writeAutopsyCsv(csv, "stride");
    const std::string csv_text = csv.str();
    EXPECT_NE(csv_text.find("label,kind,pc,attempts,issued,timely"),
              std::string::npos);
    EXPECT_NE(csv_text.find("stride,total,-,1,1,1"), std::string::npos);
    EXPECT_NE(csv_text.find("stride,issuer_pc,0xaa"), std::string::npos);
    EXPECT_NE(csv_text.find("stride,demand_pc,0xbb"), std::string::npos);

    std::ostringstream json;
    tracker.writeAutopsyJson(json, "stride");
    const std::string json_text = json.str();
    EXPECT_NE(json_text.find("\"prefetcher\":\"stride\""),
              std::string::npos);
    EXPECT_NE(json_text.find("\"timely\":1"), std::string::npos);
    EXPECT_NE(json_text.find("\"by_issuer_pc\""), std::string::npos);
    EXPECT_NE(json_text.find("\"by_demand_pc\""), std::string::npos);
}

TEST(TraceEvents, StreamIsWellFormed)
{
    std::ostringstream out;
    {
        obs::TraceEventWriter events(out);
        PrefetchTracker tracker(&events, /*sample_every=*/1,
                                /*counter_interval=*/100);
        Hierarchy hierarchy(defaultMemory());
        hierarchy.setTracker(&tracker);
        ASSERT_EQ(hierarchy.prefetch(0x40, 0, 0, 0xA0),
                  PrefetchOutcome::Issued);
        hierarchy.access(0x40, 2000, false, 0xB0);
        hierarchy.access(0x20000, 2100, false, 0xB1); // plain miss
        tracker.finish(3000);
        events.close();
    }
    const std::string text = out.str();
    EXPECT_EQ(text.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
              0u);
    EXPECT_NE(text.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(text.find("\"cat\":\"prefetch\""), std::string::npos);
    EXPECT_EQ(text.rfind("\n]}\n"), text.size() - 4);
    // No trailing comma before the closing bracket.
    EXPECT_EQ(text.find(",\n]"), std::string::npos);
}

TEST(ObservedSweep, BitIdenticalWithAndWithoutObserver)
{
    const auto sweep = [](bool observe, bool observe_learning,
                          bool observe_mem, unsigned jobs) {
        SystemConfig config;
        workloads::WorkloadParams params;
        params.scale = 8000;
        sim::SweepOptions options;
        options.verbose = false;
        options.jobs = jobs;
        options.observe = observe;
        options.observe_learning = observe_learning;
        options.observe_mem = observe_mem;
        return sim::runSweep({"list", "bst"},
                             {"none", "stride", "context"}, params,
                             config, options);
    };
    const sim::SweepResult plain = sweep(false, false, false, 1);
    const sim::SweepResult observed1 = sweep(true, false, false, 1);
    const sim::SweepResult observed4 = sweep(true, false, false, 4);
    // The learning observer streams every bandit/CST event; it too
    // must never perturb a single simulated count.
    const sim::SweepResult learning1 = sweep(true, true, false, 1);
    const sim::SweepResult learning4 = sweep(true, true, false, 4);
    // And the memory observatory's shadow models classify every demand
    // access — strictly side-band, at any job count.
    const sim::SweepResult mem1 = sweep(true, false, true, 1);
    const sim::SweepResult mem4 = sweep(true, false, true, 4);
    ASSERT_EQ(plain.cells.size(), observed1.cells.size());
    ASSERT_EQ(plain.cells.size(), observed4.cells.size());
    ASSERT_EQ(plain.cells.size(), learning1.cells.size());
    ASSERT_EQ(plain.cells.size(), learning4.cells.size());
    ASSERT_EQ(plain.cells.size(), mem1.cells.size());
    ASSERT_EQ(plain.cells.size(), mem4.cells.size());
    for (std::size_t i = 0; i < plain.cells.size(); ++i) {
        const sim::RunStats &a = plain.cells[i].stats;
        for (const sim::RunStats *b : {&observed1.cells[i].stats,
                                       &observed4.cells[i].stats,
                                       &learning1.cells[i].stats,
                                       &learning4.cells[i].stats,
                                       &mem1.cells[i].stats,
                                       &mem4.cells[i].stats}) {
            EXPECT_EQ(a.instructions, b->instructions) << "cell " << i;
            EXPECT_EQ(a.cycles, b->cycles) << "cell " << i;
            EXPECT_EQ(a.demand_accesses, b->demand_accesses);
            EXPECT_EQ(a.l1_misses, b->l1_misses);
            EXPECT_EQ(a.l2_demand_misses, b->l2_demand_misses);
            EXPECT_EQ(a.prefetch_never_hit, b->prefetch_never_hit);
            for (std::size_t c = 0; c < a.classes.size(); ++c)
                EXPECT_EQ(a.classes[c], b->classes[c]) << "class " << c;
            EXPECT_EQ(a.hierarchy.prefetches_issued,
                      b->hierarchy.prefetches_issued);
            EXPECT_EQ(a.hierarchy.prefetches_dropped,
                      b->hierarchy.prefetches_dropped);
            EXPECT_EQ(a.hierarchy.prefetch_evicted_unused,
                      b->hierarchy.prefetch_evicted_unused);
            EXPECT_EQ(a.hierarchy.l1_writebacks,
                      b->hierarchy.l1_writebacks);
            EXPECT_EQ(a.hierarchy.l2_writebacks,
                      b->hierarchy.l2_writebacks);
        }
    }
}

TEST(AutopsyTables, ByteIdenticalAcrossIdenticalRuns)
{
    // The autopsy writers iterate sorted containers only — two runs
    // of the same experiment must render byte-identical tables (the
    // golden contract cspdiff and the CI observatory rely on).
    const auto run = [] {
        SystemConfig config;
        workloads::WorkloadParams params;
        params.scale = 8000;
        const auto workload =
            workloads::Registry::builtin().create("bst");
        const trace::TraceBuffer trace = workload->generate(params);
        auto prefetcher = sim::makePrefetcher("context", config);
        sim::Simulator simulator(config);
        PrefetchTracker tracker(nullptr, 1);
        obs::RunObserver observer;
        observer.tracker = &tracker;
        simulator.setObserver(&observer);
        simulator.run(trace, *prefetcher);
        std::ostringstream csv;
        std::ostringstream json;
        tracker.writeAutopsyCsv(csv, "context");
        tracker.writeAutopsyJson(json, "context");
        return std::make_pair(csv.str(), json.str());
    };
    const auto a = run();
    const auto b = run();
    EXPECT_FALSE(a.first.empty());
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
}

TEST(Log2Histogram, BucketsAndPercentiles)
{
    Log2Histogram hist;
    hist.sample(0);   // bucket 0
    hist.sample(1);   // bucket 1: [1,2)
    hist.sample(2);   // bucket 2: [2,4)
    hist.sample(3);   // bucket 2
    hist.sample(300); // bucket 9: [256,512)
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_EQ(hist.bucketLo(2), 2u);
    EXPECT_EQ(hist.bucketHi(2), 3u); // inclusive: [2, 3]
    EXPECT_DOUBLE_EQ(hist.mean(), (0.0 + 1 + 2 + 3 + 300) / 5.0);
    // Percentiles resolve to the inclusive upper edge of the bucket
    // holding the rank-th sample: rank(p50) = 2 -> value 1's bucket.
    EXPECT_EQ(hist.percentile(0.5), 1u);
    EXPECT_EQ(hist.percentile(0.99), 3u);
    EXPECT_EQ(hist.percentile(1.0), 511u); // 300 lands in [256, 511]
    hist.clear();
    EXPECT_EQ(hist.count(), 0u);
}

} // namespace
} // namespace csp
