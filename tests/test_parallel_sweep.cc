/** @file Determinism contract of the parallel sweep engine: runSweep
 *  at jobs=N is bit-identical to jobs=1 for every cell, cells stay
 *  row-major, and the core ThreadPool behaves. Built under
 *  -fsanitize=thread by the CI TSan job (CSP_TSAN=ON) as the
 *  data-race smoke test for the whole engine. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <vector>

#include "core/thread_pool.h"
#include "sim/experiment.h"

namespace csp::sim {
namespace {

const std::vector<std::string> kWorkloads = {"array", "list", "bst"};
const std::vector<std::string> kPrefetchers = {"none", "stride",
                                               "context"};

SweepResult
smallSweep(unsigned jobs, std::uint64_t scale = 12000)
{
    SystemConfig config;
    workloads::WorkloadParams params;
    params.scale = scale;
    SweepOptions options;
    options.verbose = false;
    options.jobs = jobs;
    return runSweep(kWorkloads, kPrefetchers, params, config, options);
}

SweepResult
instrumentedSweep(unsigned jobs, bool profile, bool observe_learning)
{
    SystemConfig config;
    workloads::WorkloadParams params;
    params.scale = 12000;
    SweepOptions options;
    options.verbose = false;
    options.jobs = jobs;
    options.profile = profile;
    options.observe_learning = observe_learning;
    return runSweep(kWorkloads, kPrefetchers, params, config, options);
}

void
expectIdenticalStats(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.demand_accesses, b.demand_accesses);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.l2_demand_misses, b.l2_demand_misses);
    EXPECT_EQ(a.prefetch_never_hit, b.prefetch_never_hit);
    for (std::size_t c = 0; c < a.classes.size(); ++c)
        EXPECT_EQ(a.classes[c], b.classes[c]) << "class " << c;
    EXPECT_EQ(a.hierarchy.demand_accesses, b.hierarchy.demand_accesses);
    EXPECT_EQ(a.hierarchy.l1_misses, b.hierarchy.l1_misses);
    EXPECT_EQ(a.hierarchy.l2_demand_misses,
              b.hierarchy.l2_demand_misses);
    EXPECT_EQ(a.hierarchy.prefetches_issued,
              b.hierarchy.prefetches_issued);
    EXPECT_EQ(a.hierarchy.prefetches_duplicate,
              b.hierarchy.prefetches_duplicate);
    EXPECT_EQ(a.hierarchy.prefetches_dropped,
              b.hierarchy.prefetches_dropped);
    EXPECT_EQ(a.hierarchy.prefetch_evicted_unused,
              b.hierarchy.prefetch_evicted_unused);
    EXPECT_EQ(a.hierarchy.prefetch_unused_at_end,
              b.hierarchy.prefetch_unused_at_end);
    EXPECT_EQ(a.hierarchy.l1_writebacks, b.hierarchy.l1_writebacks);
    EXPECT_EQ(a.hierarchy.l2_writebacks, b.hierarchy.l2_writebacks);
}

void
expectIdenticalSweeps(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].workload, b.cells[i].workload);
        EXPECT_EQ(a.cells[i].prefetcher, b.cells[i].prefetcher);
        expectIdenticalStats(a.cells[i].stats, b.cells[i].stats);
    }
}

TEST(ParallelSweep, BitIdenticalAcrossJobCounts)
{
    const SweepResult serial = smallSweep(1);
    const SweepResult two = smallSweep(2);
    const SweepResult eight = smallSweep(8);
    expectIdenticalSweeps(serial, two);
    expectIdenticalSweeps(serial, eight);
}

/** The instrumented replay loops (prof.* phase timers, learning
 *  observer) must not perturb simulation results: every combination of
 *  profiling and learning hooks, at jobs 1 and 4, is bit-identical to
 *  the plain serial sweep. This is the contract that lets the hot-path
 *  rework template observe()/run() on instrumentation without a
 *  correctness risk. */
TEST(ParallelSweep, InstrumentationBitIdenticalAcrossJobCounts)
{
    const SweepResult plain = smallSweep(1);
    for (const bool profile : {false, true}) {
        for (const bool learn : {false, true}) {
            if (!profile && !learn)
                continue;
            expectIdenticalSweeps(
                plain, instrumentedSweep(1, profile, learn));
            expectIdenticalSweeps(
                plain, instrumentedSweep(4, profile, learn));
        }
    }
}

TEST(ParallelSweep, CellsAssembleRowMajor)
{
    const SweepResult sweep = smallSweep(4);
    ASSERT_EQ(sweep.cells.size(),
              kWorkloads.size() * kPrefetchers.size());
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
        EXPECT_EQ(sweep.cells[i].workload,
                  kWorkloads[i / kPrefetchers.size()]);
        EXPECT_EQ(sweep.cells[i].prefetcher,
                  kPrefetchers[i % kPrefetchers.size()]);
        EXPECT_GT(sweep.cells[i].stats.instructions, 0u);
    }
}

TEST(ParallelSweep, AutoJobsMatchesExplicitJobs)
{
    // jobs=0 resolves through CSP_JOBS / hardware_concurrency; the
    // result must not depend on what it resolves to.
    const SweepResult automatic = smallSweep(0);
    const SweepResult serial = smallSweep(1);
    expectIdenticalSweeps(automatic, serial);
}

/** TSan smoke: many workers, verbose heartbeat on, shared traces —
 *  exercises SweepProgress's mutex and the logging path under real
 *  thread contention. Run this binary from a CSP_TSAN=ON build to
 *  check the engine for data races. */
TEST(ParallelSweep, TsanSmokeVerboseManyJobs)
{
    SystemConfig config;
    workloads::WorkloadParams params;
    params.scale = 6000;
    SweepOptions options;
    options.verbose = true;
    options.jobs = 8;
    const SweepResult sweep = runSweep({"list", "bst"},
                                       {"none", "stride", "context"},
                                       params, config, options);
    EXPECT_EQ(sweep.cells.size(), 6u);
    for (const CellResult &cell : sweep.cells)
        EXPECT_GT(cell.stats.ipc(), 0.0);
}

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
    // The pool is reusable after wait().
    pool.parallelFor(50, [&count](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 150);
}

TEST(ThreadPool, ParallelForCoversEveryIndex)
{
    ThreadPool pool(3);
    std::vector<int> hits(64, 0);
    pool.parallelFor(hits.size(),
                     [&hits](std::size_t i) { hits[i] = 1; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, DefaultJobsHonoursEnvironment)
{
    setenv("CSP_JOBS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultJobs(), 3u);
    setenv("CSP_JOBS", "garbage", 1);
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
    unsetenv("CSP_JOBS");
    EXPECT_GE(ThreadPool::defaultJobs(), 1u);
}

} // namespace
} // namespace csp::sim
