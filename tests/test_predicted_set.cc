/** @file Equivalence of the O(1) PredictedSet against the reference
 *  256-entry linear-scan ring it replaced. The two must agree on every
 *  contains() answer for any record/query interleaving, which is what
 *  keeps the Figure-9 class counts identical. */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "core/rng.h"
#include "sim/predicted_set.h"

namespace csp::sim {
namespace {

/** The original implementation, kept verbatim as the oracle. */
class ReferenceRing
{
  public:
    void
    record(Addr line)
    {
        ring_[pos_ % ring_.size()] = line;
        ++pos_;
    }

    bool
    contains(Addr line) const
    {
        const std::size_t n = std::min<std::size_t>(pos_, ring_.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (ring_[i] == line)
                return true;
        }
        return false;
    }

  private:
    std::array<Addr, 256> ring_{};
    std::size_t pos_ = 0;
};

TEST(PredictedSet, EmptyContainsNothing)
{
    PredictedSet set;
    EXPECT_FALSE(set.contains(0));
    EXPECT_FALSE(set.contains(0x1000));
}

TEST(PredictedSet, RecentLineIsPresent)
{
    PredictedSet set;
    set.record(0x40);
    EXPECT_TRUE(set.contains(0x40));
    EXPECT_FALSE(set.contains(0x80));
}

TEST(PredictedSet, LineAgesOutAfterWindow)
{
    PredictedSet set;
    set.record(0xabc0);
    for (int i = 0; i < 255; ++i)
        set.record(0x100000 + i * 0x40);
    EXPECT_TRUE(set.contains(0xabc0)); // exactly 256 records ago
    set.record(0x900000);
    EXPECT_FALSE(set.contains(0xabc0)); // now outside the window
}

TEST(PredictedSet, ReRecordingRefreshesTheWindow)
{
    PredictedSet set;
    set.record(0xabc0);
    for (int i = 0; i < 200; ++i)
        set.record(0x100000 + i * 0x40);
    set.record(0xabc0); // refresh
    for (int i = 0; i < 200; ++i)
        set.record(0x200000 + i * 0x40);
    EXPECT_TRUE(set.contains(0xabc0));
}

/** Randomized differential test across address-pool sizes, covering
 *  heavy duplication (small pools) and high turnover (large pools). */
TEST(PredictedSet, MatchesReferenceRingOnRandomTraffic)
{
    for (const std::size_t pool :
         {8ull, 64ull, 256ull, 300ull, 4096ull}) {
        Rng rng(pool * 7919 + 1);
        PredictedSet set;
        ReferenceRing ring;
        for (int step = 0; step < 20000; ++step) {
            const Addr line = (rng.below(pool) + 1) * 0x40;
            if (rng.chance(0.6)) {
                set.record(line);
                ring.record(line);
            }
            const Addr probe = (rng.below(pool) + 1) * 0x40;
            ASSERT_EQ(set.contains(probe), ring.contains(probe))
                << "pool " << pool << " step " << step;
        }
    }
}

} // namespace
} // namespace csp::sim
