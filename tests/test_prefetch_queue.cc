/** @file Unit tests for the feedback unit's prefetch queue. */

#include <gtest/gtest.h>

#include "prefetch/context/prefetch_queue.h"

namespace csp::prefetch::ctx {
namespace {

TEST(PrefetchQueue, HitReportsDepthInAccesses)
{
    PrefetchQueue q(8);
    q.push(0x1000, 7, 3, /*seq=*/10, false, nullptr);
    unsigned reported_depth = 0;
    unsigned hits = q.onAccess(
        0x1000, /*seq=*/35,
        [&](const PendingPrefetch &entry, unsigned depth) {
            reported_depth = depth;
            EXPECT_EQ(entry.reduced_key, 7u);
            EXPECT_EQ(entry.delta, 3);
        });
    EXPECT_EQ(hits, 1u);
    EXPECT_EQ(reported_depth, 25u);
}

TEST(PrefetchQueue, EntryHitOnlyOnce)
{
    PrefetchQueue q(8);
    q.push(0x1000, 7, 3, 0, false, nullptr);
    EXPECT_EQ(q.onAccess(0x1000, 5, nullptr), 1u);
    EXPECT_EQ(q.onAccess(0x1000, 6, nullptr), 0u);
}

TEST(PrefetchQueue, MultipleEntriesSameLineAllHit)
{
    PrefetchQueue q(8);
    q.push(0x1000, 1, 3, 0, false, nullptr);
    q.push(0x1000, 2, 5, 1, true, nullptr);
    EXPECT_EQ(q.onAccess(0x1000, 10, nullptr), 2u);
}

TEST(PrefetchQueue, NonMatchingLineNoHit)
{
    PrefetchQueue q(8);
    q.push(0x1000, 7, 3, 0, false, nullptr);
    EXPECT_EQ(q.onAccess(0x2000, 5, nullptr), 0u);
}

TEST(PrefetchQueue, PendingChecksUnhitEntries)
{
    PrefetchQueue q(8);
    EXPECT_FALSE(q.pending(0x1000));
    q.push(0x1000, 7, 3, 0, false, nullptr);
    EXPECT_TRUE(q.pending(0x1000));
    q.onAccess(0x1000, 5, nullptr);
    EXPECT_FALSE(q.pending(0x1000)); // hit entries no longer pending
}

TEST(PrefetchQueue, EvictionExpiresUnhitOldest)
{
    PrefetchQueue q(2);
    int expired = 0;
    const auto on_expiry = [&](const PendingPrefetch &entry) {
        ++expired;
        EXPECT_EQ(entry.line, 0x1000u);
    };
    q.push(0x1000, 1, 1, 0, false, on_expiry);
    q.push(0x2000, 2, 2, 1, false, on_expiry);
    q.push(0x3000, 3, 3, 2, false, on_expiry); // evicts 0x1000
    EXPECT_EQ(expired, 1);
}

TEST(PrefetchQueue, HitEntriesExpireSilently)
{
    PrefetchQueue q(2);
    int expired = 0;
    const auto on_expiry = [&](const PendingPrefetch &) { ++expired; };
    q.push(0x1000, 1, 1, 0, false, on_expiry);
    q.onAccess(0x1000, 1, nullptr);
    q.push(0x2000, 2, 2, 2, false, on_expiry);
    q.push(0x3000, 3, 3, 3, false, on_expiry); // evicts the hit entry
    EXPECT_EQ(expired, 0);
}

TEST(PrefetchQueue, DemoteToShadowPicksNewestReal)
{
    PrefetchQueue q(8);
    q.push(0x1000, 1, 1, 0, false, nullptr);
    q.push(0x1000, 2, 2, 5, false, nullptr);
    q.demoteToShadow(0x1000);
    // The newest (seq 5) entry became shadow; verify via hit callback.
    bool newest_shadow = false;
    q.onAccess(0x1000, 10,
               [&](const PendingPrefetch &entry, unsigned) {
                   if (entry.seq == 5)
                       newest_shadow = entry.shadow;
               });
    EXPECT_TRUE(newest_shadow);
}

TEST(PrefetchQueue, FlushExpiresEverythingUnhit)
{
    PrefetchQueue q(8);
    int expired = 0;
    q.push(0x1000, 1, 1, 0, false, nullptr);
    q.push(0x2000, 2, 2, 1, false, nullptr);
    q.onAccess(0x1000, 3, nullptr);
    q.flush([&](const PendingPrefetch &) { ++expired; });
    EXPECT_EQ(expired, 1);
    EXPECT_EQ(q.size(), 0u);
}

TEST(PrefetchQueue, SizeTracksLiveEntries)
{
    PrefetchQueue q(4);
    EXPECT_EQ(q.size(), 0u);
    q.push(0x1000, 1, 1, 0, false, nullptr);
    q.push(0x2000, 2, 2, 1, false, nullptr);
    EXPECT_EQ(q.size(), 2u);
    q.clear();
    EXPECT_EQ(q.size(), 0u);
}

TEST(PrefetchQueue, ShadowFlagPreserved)
{
    PrefetchQueue q(4);
    q.push(0x1000, 1, 1, 0, true, nullptr);
    bool shadow = false;
    q.onAccess(0x1000, 1,
               [&](const PendingPrefetch &entry, unsigned) {
                   shadow = entry.shadow;
               });
    EXPECT_TRUE(shadow);
}

} // namespace
} // namespace csp::prefetch::ctx
