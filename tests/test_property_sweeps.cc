/** @file Cross-module property tests: parameterized sweeps asserting
 *  invariants that must hold for any reasonable configuration. */

#include <gtest/gtest.h>

#include <tuple>

#include "mem/hierarchy.h"
#include "prefetch/context/context_prefetcher.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace csp {
namespace {

// ---------------------------------------------------------------------
// Cache geometry sweep: hit/miss behaviour is geometry-independent.
// ---------------------------------------------------------------------

class CacheGeometryTest
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t /*size*/, unsigned /*ways*/>>
{};

TEST_P(CacheGeometryTest, SecondTouchAlwaysHits)
{
    const auto [size, ways] = GetParam();
    CacheConfig config;
    config.size_bytes = size;
    config.ways = ways;
    config.line_bytes = 64;
    mem::Cache cache(config, "sweep");
    cache.insert(0x12345000, 0, false);
    EXPECT_NE(cache.lookup(0x12345000), nullptr);
}

TEST_P(CacheGeometryTest, CapacityIsRespected)
{
    const auto [size, ways] = GetParam();
    CacheConfig config;
    config.size_bytes = size;
    config.ways = ways;
    config.line_bytes = 64;
    mem::Cache cache(config, "sweep");
    const std::uint64_t lines = size / 64;
    // Fill twice the capacity; at most `lines` can remain resident.
    std::uint64_t resident = 0;
    for (std::uint64_t i = 0; i < lines * 2; ++i)
        cache.insert(i * 64, 0, false);
    for (std::uint64_t i = 0; i < lines * 2; ++i) {
        if (cache.peek(i * 64) != nullptr)
            ++resident;
    }
    EXPECT_LE(resident, lines);
    EXPECT_GE(resident, lines / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_tuple(4096, 1),
                      std::make_tuple(4096, 4),
                      std::make_tuple(65536, 8),
                      std::make_tuple(65536, 16),
                      std::make_tuple(1 << 20, 16)));

// ---------------------------------------------------------------------
// Hierarchy latency ordering across DRAM latencies.
// ---------------------------------------------------------------------

class DramLatencyTest : public ::testing::TestWithParam<Cycle>
{};

TEST_P(DramLatencyTest, ServiceLevelsOrderLatencies)
{
    MemoryConfig config;
    config.dram_latency = GetParam();
    mem::Hierarchy hierarchy(config);
    const mem::AccessResult miss = hierarchy.access(0x100000, 0);
    const Cycle miss_latency = miss.complete;
    const mem::AccessResult hit =
        hierarchy.access(0x100000, miss.complete + 1);
    const Cycle hit_latency = hit.complete - (miss.complete + 1);
    EXPECT_GT(miss_latency, hit_latency);
    EXPECT_GE(miss_latency, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Latencies, DramLatencyTest,
                         ::testing::Values(50, 100, 300, 600));

// ---------------------------------------------------------------------
// Context prefetcher configuration sweep: learning must survive any
// reasonable CST geometry, and stats must stay consistent.
// ---------------------------------------------------------------------

class CstGeometryTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(CstGeometryTest, StridedStreamLearnsAtAnySize)
{
    ContextPrefetcherConfig config;
    config.cst_entries = GetParam();
    config.reducer_entries = GetParam() * 8;
    prefetch::ctx::ContextPrefetcher prefetcher(config, 1);
    trace::ContextSnapshot ctx;
    ctx.set(trace::Attr::IP, 0x400);
    std::vector<prefetch::PrefetchRequest> out;
    for (int i = 0; i < 15000; ++i) {
        prefetch::AccessInfo info;
        info.seq = static_cast<AccessSeq>(i);
        info.pc = 0x400;
        info.vaddr = 0x100000 + static_cast<Addr>(i) * 64;
        info.line_addr = info.vaddr;
        info.free_l1_mshrs = 4;
        info.context = &ctx;
        out.clear();
        prefetcher.observe(info, out);
    }
    EXPECT_GT(prefetcher.policy().accuracy(), 0.4);
    EXPECT_GT(prefetcher.stats().real_predictions, 500u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CstGeometryTest,
                         ::testing::Values(256, 1024, 2048, 8192));

// ---------------------------------------------------------------------
// Simulator invariants across every prefetcher and a workload mix.
// ---------------------------------------------------------------------

class SimInvariantTest
    : public ::testing::TestWithParam<
          std::tuple<std::string /*workload*/, std::string /*pf*/>>
{};

TEST_P(SimInvariantTest, AccountingAlwaysConsistent)
{
    const auto [workload_name, pf_name] = GetParam();
    workloads::WorkloadParams params;
    params.scale = 25000;
    const trace::TraceBuffer trace = workloads::Registry::builtin()
                                         .create(workload_name)
                                         ->generate(params);
    SystemConfig config;
    auto prefetcher = sim::makePrefetcher(pf_name, config);
    sim::Simulator simulator(config);
    const sim::RunStats stats = simulator.run(trace, *prefetcher);

    EXPECT_EQ(stats.instructions, trace.instructions());
    EXPECT_EQ(stats.demand_accesses, trace.memAccesses());
    EXPECT_LE(stats.l2_demand_misses, stats.l1_misses);
    EXPECT_LE(stats.l1_misses, stats.demand_accesses);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_LE(stats.ipc(), static_cast<double>(config.core.fetch_width));
    std::uint64_t class_sum = 0;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(sim::AccessClass::Count); ++c)
        class_sum += stats.classes[c];
    EXPECT_EQ(class_sum, stats.demand_accesses);
    EXPECT_LE(stats.prefetch_never_hit,
              stats.hierarchy.prefetches_issued);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SimInvariantTest,
    ::testing::Combine(::testing::Values("list", "array", "bst",
                                         "mcf", "graph500-list",
                                         "setCover"),
                       ::testing::Values("none", "stride", "ghb-pcdc",
                                         "sms", "markov", "context")),
    [](const auto &info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::get<1>(info.param);
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

// ---------------------------------------------------------------------
// Softmax exploration (the section-8 extension) sanity.
// ---------------------------------------------------------------------

TEST(SoftmaxExploration, PrefersHighScores)
{
    ContextPrefetcherConfig config;
    config.cst_entries = 16;
    prefetch::ctx::Cst cst(config);
    cst.addLink(5, 1);
    cst.addLink(5, 2);
    cst.reward(5, 2, 40);
    Rng rng(3);
    int picked_hot = 0;
    for (int i = 0; i < 2000; ++i) {
        std::int32_t delta = 0;
        ASSERT_TRUE(cst.softmaxLink(5, rng, 8.0, &delta));
        if (delta == 2)
            ++picked_hot;
    }
    // exp(40/8)/(exp(40/8)+exp(0)) ~ 0.993.
    EXPECT_GT(picked_hot, 1800);
}

TEST(SoftmaxExploration, HighTemperatureApproachesUniform)
{
    ContextPrefetcherConfig config;
    config.cst_entries = 16;
    prefetch::ctx::Cst cst(config);
    cst.addLink(5, 1);
    cst.addLink(5, 2);
    cst.reward(5, 2, 40);
    Rng rng(3);
    int picked_hot = 0;
    for (int i = 0; i < 2000; ++i) {
        std::int32_t delta = 0;
        ASSERT_TRUE(cst.softmaxLink(5, rng, 1000.0, &delta));
        if (delta == 2)
            ++picked_hot;
    }
    EXPECT_NEAR(picked_hot, 1000, 150);
}

TEST(SoftmaxExploration, EmptyEntryReturnsFalse)
{
    ContextPrefetcherConfig config;
    config.cst_entries = 16;
    prefetch::ctx::Cst cst(config);
    Rng rng(3);
    std::int32_t delta = 0;
    EXPECT_FALSE(cst.softmaxLink(5, rng, 8.0, &delta));
}

TEST(SoftmaxExploration, EndToEndStillLearns)
{
    ContextPrefetcherConfig config;
    config.softmax_exploration = true;
    prefetch::ctx::ContextPrefetcher prefetcher(config, 1);
    trace::ContextSnapshot ctx;
    ctx.set(trace::Attr::IP, 0x400);
    std::vector<prefetch::PrefetchRequest> out;
    for (int i = 0; i < 15000; ++i) {
        prefetch::AccessInfo info;
        info.seq = static_cast<AccessSeq>(i);
        info.pc = 0x400;
        info.vaddr = 0x100000 + static_cast<Addr>(i) * 64;
        info.line_addr = info.vaddr;
        info.free_l1_mshrs = 4;
        info.context = &ctx;
        out.clear();
        prefetcher.observe(info, out);
    }
    EXPECT_GT(prefetcher.policy().accuracy(), 0.4);
}

} // namespace
} // namespace csp
