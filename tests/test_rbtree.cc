/** @file Unit and property tests for the red-black tree substrate. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/rng.h"
#include "workloads/ubench/rbtree.h"

namespace csp::workloads::ubench {
namespace {

runtime::Arena &
testArena()
{
    static runtime::Arena arena(64u << 20,
                                runtime::Placement::Sequential, 1);
    return arena;
}

TEST(RbTree, EmptyTreeInvariants)
{
    RbTree tree(testArena());
    EXPECT_EQ(tree.size(), 0u);
    EXPECT_EQ(tree.checkInvariants(), 0);
    EXPECT_EQ(tree.minimum(), nullptr);
}

TEST(RbTree, InsertAndFind)
{
    RbTree tree(testArena());
    tree.insert(5, 50);
    tree.insert(3, 30);
    tree.insert(8, 80);
    ASSERT_NE(tree.find(3), nullptr);
    EXPECT_EQ(tree.find(3)->value, 30u);
    EXPECT_EQ(tree.find(99), nullptr);
}

TEST(RbTree, InsertOverwritesValue)
{
    RbTree tree(testArena());
    tree.insert(5, 50);
    tree.insert(5, 51);
    EXPECT_EQ(tree.size(), 1u);
    EXPECT_EQ(tree.find(5)->value, 51u);
}

TEST(RbTree, SortedInsertionKeepsInvariants)
{
    // The classic degenerate case for unbalanced BSTs.
    RbTree tree(testArena());
    for (std::uint64_t k = 0; k < 1000; ++k) {
        tree.insert(k, k);
        ASSERT_GT(tree.checkInvariants(), 0) << "after key " << k;
    }
    // Height is logarithmic: black height of 1000 nodes < 12.
    EXPECT_LT(tree.checkInvariants(), 12);
}

TEST(RbTree, InOrderTraversalIsSorted)
{
    RbTree tree(testArena());
    Rng rng(7);
    std::set<std::uint64_t> keys;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t k = rng.below(100000);
        tree.insert(k, k);
        keys.insert(k);
    }
    std::vector<std::uint64_t> walked;
    for (const RbTree::Node *node = tree.minimum(); node != nullptr;
         node = RbTree::successor(node)) {
        walked.push_back(node->key);
    }
    EXPECT_TRUE(std::is_sorted(walked.begin(), walked.end()));
    EXPECT_EQ(walked.size(), keys.size());
}

TEST(RbTree, VisitCallbackSeesDescentPath)
{
    RbTree tree(testArena());
    for (std::uint64_t k : {50, 25, 75, 10, 30})
        tree.insert(k, k);
    std::vector<std::uint64_t> path;
    tree.find(30, [&](const RbTree::Node *node, bool) {
        path.push_back(node->key);
    });
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), 50u);
    EXPECT_EQ(path.back(), 30u);
}

TEST(RbTree, RebalanceStepsReported)
{
    RbTree tree(testArena());
    unsigned total_steps = 0;
    for (std::uint64_t k = 0; k < 100; ++k) {
        unsigned steps = 0;
        tree.insert(k, k, {}, &steps);
        total_steps += steps;
    }
    // Sorted insertion forces rotations/recolorings.
    EXPECT_GT(total_steps, 0u);
}

/** Property sweep: invariants hold for assorted insertion orders. */
class RbTreeSeedTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RbTreeSeedTest, RandomInsertionsKeepInvariants)
{
    RbTree tree(testArena());
    Rng rng(GetParam());
    std::set<std::uint64_t> reference;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t k = rng.below(5000);
        tree.insert(k, k * 2);
        reference.insert(k);
    }
    EXPECT_GT(tree.checkInvariants(), 0);
    EXPECT_EQ(tree.size(), reference.size());
    for (std::uint64_t k : reference)
        ASSERT_NE(tree.find(k), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbTreeSeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace csp::workloads::ubench
