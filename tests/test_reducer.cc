/** @file Unit tests for the Reducer's online feature selection. */

#include <gtest/gtest.h>

#include <bit>

#include "prefetch/context/reducer.h"

namespace csp::prefetch::ctx {
namespace {

using trace::Attr;
using trace::AttrMask;
using trace::attrBit;

ContextPrefetcherConfig
smallConfig()
{
    ContextPrefetcherConfig config;
    config.reducer_entries = 64;
    return config;
}

AttrMask
initialMask()
{
    return attrBit(Attr::IP) | attrBit(Attr::TypeInfo);
}

TEST(Reducer, FreshEntryHasInitialMask)
{
    Reducer reducer(smallConfig(), initialMask());
    EXPECT_EQ(reducer.lookup(7), initialMask());
}

TEST(Reducer, OverloadActivatesNextAttribute)
{
    Reducer reducer(smallConfig(), initialMask());
    reducer.lookup(7);
    EXPECT_TRUE(reducer.onOverload(7));
    const AttrMask mask = reducer.lookup(7);
    EXPECT_NE(mask, initialMask());
    EXPECT_EQ(std::popcount(static_cast<unsigned>(mask)), 3);
}

TEST(Reducer, ActivationFollowsPriorityOrder)
{
    Reducer reducer(smallConfig(), attrBit(Attr::IP));
    reducer.onOverload(7);
    // Priority order is the Attr enumeration: TypeInfo comes next.
    EXPECT_NE(reducer.lookup(7) & attrBit(Attr::TypeInfo), 0);
    EXPECT_EQ(reducer.lookup(7) & attrBit(Attr::AddrHistory), 0);
}

TEST(Reducer, AddrHistoryActivatedBeforeBranchHistory)
{
    // Paper Table 1: address history is risky but still more useful
    // than raw branch noise; our fixed order reflects that.
    Reducer reducer(smallConfig(), attrBit(Attr::IP));
    AttrMask mask = 0;
    for (int i = 0; i < 8; ++i) {
        mask = reducer.lookup(7);
        if (mask & attrBit(Attr::AddrHistory))
            break;
        reducer.onOverload(7);
    }
    EXPECT_NE(mask & attrBit(Attr::AddrHistory), 0);
    EXPECT_EQ(mask & attrBit(Attr::BranchHistory), 0);
}

TEST(Reducer, OverloadSaturatesAtAllAttrs)
{
    Reducer reducer(smallConfig(), attrBit(Attr::IP));
    for (unsigned i = 0; i < trace::kNumAttrs; ++i)
        reducer.onOverload(7);
    EXPECT_EQ(reducer.lookup(7), trace::kAllAttrs);
    EXPECT_FALSE(reducer.onOverload(7));
}

TEST(Reducer, UnderloadDeactivatesMostRecent)
{
    Reducer reducer(smallConfig(), initialMask());
    reducer.onOverload(7);
    const AttrMask widened = reducer.lookup(7);
    EXPECT_TRUE(reducer.onUnderload(7));
    EXPECT_EQ(reducer.lookup(7), initialMask());
    EXPECT_NE(widened, initialMask());
}

TEST(Reducer, UnderloadNeverShrinksBelowInitial)
{
    Reducer reducer(smallConfig(), initialMask());
    EXPECT_FALSE(reducer.onUnderload(7));
    EXPECT_EQ(reducer.lookup(7), initialMask());
}

TEST(Reducer, BarrenLookupsTriggerUnderload)
{
    Reducer reducer(smallConfig(), initialMask());
    reducer.onOverload(7);
    bool merged = false;
    for (int i = 0; i < 400 && !merged; ++i)
        merged = reducer.recordOutcome(7, false);
    EXPECT_TRUE(merged);
    EXPECT_EQ(reducer.lookup(7), initialMask());
}

TEST(Reducer, UsefulLookupsResetBarrenCount)
{
    Reducer reducer(smallConfig(), initialMask());
    reducer.onOverload(7);
    for (int i = 0; i < 1000; ++i) {
        // Interleaved successes keep the entry from merging.
        EXPECT_FALSE(reducer.recordOutcome(7, i % 2 == 0));
    }
    EXPECT_NE(reducer.lookup(7), initialMask());
}

TEST(Reducer, NonAdaptiveModeFreezesMasks)
{
    Reducer reducer(smallConfig(), initialMask(), /*adaptive=*/false);
    EXPECT_FALSE(reducer.onOverload(7));
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(reducer.recordOutcome(7, false));
    EXPECT_EQ(reducer.lookup(7), initialMask());
}

TEST(Reducer, ConflictDisplacesEntry)
{
    Reducer reducer(smallConfig(), initialMask());
    reducer.onOverload(7); // widen entry at index 7
    // 64 entries -> index bits 6; full hashes 7 and 7+64 share the
    // index but differ in tag.
    reducer.lookup(7 + 64);
    // Returning to the original hash finds a displaced (reset) entry.
    EXPECT_EQ(reducer.lookup(7), initialMask());
}

TEST(Reducer, MeanActiveAttrsTracksWidening)
{
    Reducer reducer(smallConfig(), attrBit(Attr::IP));
    reducer.lookup(1);
    reducer.lookup(2);
    EXPECT_DOUBLE_EQ(reducer.meanActiveAttrs(), 1.0);
    reducer.onOverload(1);
    EXPECT_DOUBLE_EQ(reducer.meanActiveAttrs(), 1.5);
}

TEST(Reducer, ResetClearsEntries)
{
    Reducer reducer(smallConfig(), initialMask());
    reducer.onOverload(7);
    reducer.reset();
    EXPECT_EQ(reducer.lookup(7), initialMask());
    EXPECT_DOUBLE_EQ(reducer.meanActiveAttrs(), 1.0 * 2);
}

} // namespace
} // namespace csp::prefetch::ctx
