/** @file The scale-out sweep service's contract: a warm (fully
 *  memoized) sweep does zero simulation work and emits byte-identical
 *  artefacts; corrupt cache entries are detected and recomputed;
 *  sharded sweeps merge bit-identically to an unsharded run; merges
 *  of mismatched sweeps are refused. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/content_store.h"
#include "core/profiling.h"
#include "sim/experiment.h"
#include "sim/result_cache.h"
#include "sim/sweep_io.h"

namespace csp::sim {
namespace {

const std::vector<std::string> kWorkloads = {"array", "list", "bst"};
const std::vector<std::string> kPrefetchers = {"none", "stride",
                                               "context"};

struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/csp_scaleout_XXXXXX";
        const char *made = mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        path = made != nullptr ? made : "";
    }

    ~TempDir()
    {
        if (!path.empty())
            std::filesystem::remove_all(path);
    }

    std::string resultDir() const { return path + "/rc"; }
    std::string traceDir() const { return path + "/tc"; }
};

SweepOptions
cachedOptions(const TempDir &dirs, unsigned jobs = 4)
{
    SweepOptions options;
    options.verbose = false;
    options.jobs = jobs;
    options.use_result_cache = true;
    options.use_trace_cache = true;
    options.result_cache_dir = dirs.resultDir();
    options.trace_cache_dir = dirs.traceDir();
    return options;
}

SweepResult
sweep(const SweepOptions &options, std::uint64_t seed = 1)
{
    SystemConfig config;
    workloads::WorkloadParams params;
    params.scale = 12000;
    params.seed = seed;
    return runSweep(kWorkloads, kPrefetchers, params, config,
                    options);
}

std::string
cellCsv(const SweepResult &result)
{
    std::ostringstream out;
    writeSweepCsv(out, result);
    return out.str();
}

TEST(ResultCache, WarmSweepIsByteIdenticalAndDoesZeroWork)
{
    TempDir dirs;
    SweepOptions uncached;
    uncached.verbose = false;
    uncached.jobs = 4;
    const SweepResult baseline = sweep(uncached);

    const SweepResult cold = sweep(cachedOptions(dirs));
    EXPECT_EQ(cold.cells_simulated, kWorkloads.size() *
                                        kPrefetchers.size());
    EXPECT_EQ(cold.cells_cached, 0u);
    EXPECT_EQ(cold.trace_cache_hits, 0u);
    // Caching must be invisible in the deterministic cell data.
    EXPECT_EQ(cellCsv(baseline), cellCsv(cold));

    prof::Profiler sink;
    SweepOptions warm_options = cachedOptions(dirs);
    warm_options.profiler_sink = &sink;
    const SweepResult warm = sweep(warm_options);
    EXPECT_EQ(warm.cells_cached,
              kWorkloads.size() * kPrefetchers.size());
    EXPECT_EQ(warm.cells_simulated, 0u);
    EXPECT_EQ(warm.trace_cache_hits, kWorkloads.size());
    EXPECT_EQ(cellCsv(cold), cellCsv(warm));
    // Zero simulation work, asserted via the aggregate prof.*
    // counters: no trace generation, no replay, no memory accesses.
    EXPECT_EQ(sink.calls(prof::Phase::TraceGen), 0u);
    EXPECT_EQ(sink.calls(prof::Phase::Replay), 0u);
    EXPECT_EQ(sink.calls(prof::Phase::MemAccess), 0u);
    // Manifests of cold and warm describe the same experiment.
    EXPECT_EQ(cold.manifest.config_digest,
              warm.manifest.config_digest);
    EXPECT_EQ(cold.manifest.trace_digest, warm.manifest.trace_digest);
    EXPECT_EQ(cold.manifest.trace_instructions,
              warm.manifest.trace_instructions);
}

TEST(ResultCache, TruncatedEntryIsRecomputed)
{
    TempDir dirs;
    const SweepResult cold = sweep(cachedOptions(dirs));

    // Truncate one entry: it must be detected and recomputed, not
    // trusted and not fatal.
    std::vector<std::string> entries;
    for (const auto &file :
         std::filesystem::directory_iterator(dirs.resultDir()))
        entries.push_back(file.path().string());
    ASSERT_EQ(entries.size(),
              kWorkloads.size() * kPrefetchers.size());
    std::sort(entries.begin(), entries.end());
    std::string text;
    ASSERT_TRUE(readFileToString(entries.front(), text));
    std::ofstream truncated(entries.front(), std::ios::trunc);
    truncated << text.substr(0, text.size() / 2);
    truncated.close();

    const SweepResult warm = sweep(cachedOptions(dirs));
    EXPECT_EQ(warm.cells_cached,
              kWorkloads.size() * kPrefetchers.size() - 1);
    EXPECT_EQ(warm.cells_simulated, 1u);
    EXPECT_EQ(cellCsv(cold), cellCsv(warm));
}

TEST(ResultCache, TamperedStatsFailTheDigestRecheck)
{
    TempDir dirs;
    const SweepResult cold = sweep(cachedOptions(dirs));

    // Bump one digit of a stored counter: the JSON stays well-formed
    // and the key block still matches, so only the payload-digest
    // re-check can catch it.
    std::vector<std::string> entries;
    for (const auto &file :
         std::filesystem::directory_iterator(dirs.resultDir()))
        entries.push_back(file.path().string());
    std::sort(entries.begin(), entries.end());
    std::string text;
    ASSERT_TRUE(readFileToString(entries.front(), text));
    const std::size_t pos = text.find("\"cycles\":");
    ASSERT_NE(pos, std::string::npos);
    char &digit = text[pos + std::string("\"cycles\":").size()];
    ASSERT_TRUE(digit >= '0' && digit <= '9');
    digit = static_cast<char>('0' + (digit - '0' + 1) % 10);
    {
        std::ofstream out(entries.front(), std::ios::trunc);
        out << text;
    }

    const SweepResult warm = sweep(cachedOptions(dirs));
    EXPECT_EQ(warm.cells_simulated, 1u);
    EXPECT_EQ(cellCsv(cold), cellCsv(warm));
}

TEST(ResultCache, EntryRefusesServingAForeignKey)
{
    TempDir dirs;
    RunStats stats;
    stats.instructions = 123;
    stats.cycles = 456;
    stats.hierarchy.l1_misses = 7;
    CellKey key;
    key.config_digest = 0x1111;
    key.trace_digest = 0x2222;
    key.workload = "array";
    key.prefetcher = "stride";
    key.scale = 1000;
    key.seed = 1;
    key.placement = "rand";
    const ResultCache cache(dirs.resultDir());
    ASSERT_TRUE(ensureDirectories(cache.root()));
    ASSERT_TRUE(cache.store(key, stats, "testsha"));

    RunStats loaded;
    ASSERT_TRUE(cache.load(key, loaded));
    EXPECT_EQ(runStatsDigest(loaded), runStatsDigest(stats));

    // A mis-keyed write (or an address collision) must be detected by
    // the stored identity, not silently served.
    CellKey other = key;
    other.prefetcher = "context";
    std::string entry;
    ASSERT_TRUE(readFileToString(cache.entryPath(key), entry));
    ASSERT_TRUE(atomicWriteFile(cache.entryPath(other), entry));
    EXPECT_FALSE(cache.load(other, loaded));
}

TEST(ResultCache, ShardsMergeByteIdenticalToUnsharded)
{
    SweepOptions unsharded;
    unsharded.verbose = false;
    unsharded.jobs = 4;
    const SweepResult full = sweep(unsharded);

    for (const unsigned jobs : {1u, 4u}) {
        std::vector<SweepResult> shards;
        std::size_t present_total = 0;
        for (unsigned i = 0; i < 3; ++i) {
            SweepOptions options;
            options.verbose = false;
            options.jobs = jobs;
            options.shard_index = i;
            options.shard_count = 3;
            shards.push_back(sweep(options));
            for (const CellResult &cell : shards.back().cells)
                present_total += cell.present ? 1 : 0;
        }
        EXPECT_EQ(present_total, full.cells.size()) << "jobs " << jobs;
        SweepResult merged;
        std::string error;
        ASSERT_TRUE(mergeSweeps(shards, merged, &error)) << error;
        EXPECT_EQ(cellCsv(full), cellCsv(merged)) << "jobs " << jobs;
    }
}

TEST(ResultCache, MergeRefusesMismatchedSweeps)
{
    SweepOptions options;
    options.verbose = false;
    options.jobs = 2;
    options.shard_count = 2;
    options.shard_index = 0;
    const SweepResult shard0 = sweep(options);
    options.shard_index = 1;
    const SweepResult other_seed = sweep(options, /*seed=*/7);

    SweepResult merged;
    std::string error;
    EXPECT_FALSE(mergeSweeps({shard0, other_seed}, merged, &error));
    EXPECT_FALSE(error.empty());

    // Incomplete coverage is refused too.
    error.clear();
    EXPECT_FALSE(mergeSweeps({shard0}, merged, &error));
    EXPECT_FALSE(error.empty());

    // A duplicated shard is a double-owned cell.
    error.clear();
    EXPECT_FALSE(mergeSweeps({shard0, shard0}, merged, &error));
    EXPECT_FALSE(error.empty());
}

TEST(ResultCache, SweepJsonRoundTrips)
{
    TempDir dirs;
    SweepOptions options;
    options.verbose = false;
    options.jobs = 2;
    SweepResult result = sweep(options);
    // Pin the derived timing doubles to exactly representable values
    // so the byte-identity below is not at the mercy of printf
    // round-tripping 16-significant-digit doubles.
    result.manifest.trace_gen_seconds = 0.125;
    result.manifest.sim_seconds = 0.25;
    result.manifest.insts_per_sec = 1536.5;

    std::ostringstream first;
    writeSweepJson(first, result);
    const std::string path = dirs.path + "/sweep.json";
    {
        std::ofstream out(path);
        out << first.str();
    }
    SweepResult reread;
    std::string error;
    ASSERT_TRUE(readSweepJson(path, reread, &error)) << error;
    std::ostringstream second;
    writeSweepJson(second, reread);
    EXPECT_EQ(first.str(), second.str());
    EXPECT_EQ(cellCsv(result), cellCsv(reread));
}

} // namespace
} // namespace csp::sim
