/** @file Unit and property tests for the bell-shaped reward function. */

#include <gtest/gtest.h>

#include "prefetch/context/reward.h"

namespace csp::prefetch::ctx {
namespace {

RewardConfig
paperReward()
{
    return RewardConfig{};
}

TEST(Reward, PositiveInsideWindow)
{
    const RewardFunction reward(paperReward());
    for (unsigned d = reward.windowLo(); d <= reward.windowHi(); ++d)
        EXPECT_GT(reward(d), 0) << "depth " << d;
}

TEST(Reward, NegativeBelowWindow)
{
    const RewardFunction reward(paperReward());
    for (unsigned d = 0; d < reward.windowLo(); ++d)
        EXPECT_LT(reward(d), 0) << "depth " << d;
}

TEST(Reward, NegativeAboveWindow)
{
    const RewardFunction reward(paperReward());
    for (unsigned d = reward.windowHi() + 1; d < 128; ++d)
        EXPECT_LT(reward(d), 0) << "depth " << d;
}

TEST(Reward, PeaksAtCenter)
{
    const RewardConfig config;
    const RewardFunction reward(config);
    const int at_center = reward(config.window_center);
    EXPECT_EQ(at_center, config.peak_reward);
    for (unsigned d = config.window_lo; d <= config.window_hi; ++d)
        EXPECT_LE(reward(d), at_center);
}

TEST(Reward, BellIsUnimodal)
{
    const RewardConfig config;
    const RewardFunction reward(config);
    // Non-decreasing up to the center, non-increasing after.
    for (unsigned d = config.window_lo; d < config.window_center; ++d)
        EXPECT_LE(reward(d), reward(d + 1));
    for (unsigned d = config.window_center; d < config.window_hi; ++d)
        EXPECT_GE(reward(d), reward(d + 1));
}

TEST(Reward, LatePenaltyStrongerThanEarly)
{
    // Paper: too-late prefetches are useless and demoted harder.
    const RewardConfig config;
    const RewardFunction reward(config);
    EXPECT_LE(reward(0), reward(127));
}

TEST(Reward, ExpiryPenaltyNegative)
{
    const RewardFunction reward(paperReward());
    EXPECT_LT(reward.expiryPenalty(), 0);
}

TEST(Reward, TabulateMatchesOperator)
{
    const RewardFunction reward(paperReward());
    const auto table = reward.tabulate(100);
    ASSERT_EQ(table.size(), 101u);
    for (unsigned d = 0; d <= 100; ++d)
        EXPECT_EQ(table[d], reward(d));
}

/** Property sweep over alternative window geometries. */
class RewardWindowTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(RewardWindowTest, WindowEdgesStillEarnPositiveReward)
{
    const auto [lo, hi] = GetParam();
    RewardConfig config;
    config.window_lo = lo;
    config.window_hi = hi;
    config.window_center = (lo + hi) / 2;
    const RewardFunction reward(config);
    EXPECT_GE(reward(lo), 1);
    EXPECT_GE(reward(hi), 1);
    EXPECT_LT(reward(lo - 1), 0);
    EXPECT_LT(reward(hi + 1), 0);
}

INSTANTIATE_TEST_SUITE_P(
    WindowGeometries, RewardWindowTest,
    ::testing::Values(std::make_tuple(10u, 40u),
                      std::make_tuple(18u, 50u),
                      std::make_tuple(5u, 100u),
                      std::make_tuple(30u, 60u),
                      std::make_tuple(2u, 8u)));

} // namespace
} // namespace csp::prefetch::ctx
