/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>

#include "core/rng.h"

namespace csp {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NearbySeedsUncorrelated)
{
    // splitmix64 seeding must decorrelate consecutive seeds.
    Rng a(1000);
    Rng b(1001);
    EXPECT_NE(a.next(), b.next());
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 50000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 50000.0, 0.25, 0.02);
}

TEST(Rng, ChanceZeroNeverFires)
{
    Rng rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(rng.chance(0.0));
}

TEST(Rng, SkewedBelowInRange)
{
    Rng rng(19);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(rng.skewedBelow(100, 2.0), 100u);
}

TEST(Rng, SkewedBelowConcentratesLow)
{
    Rng rng(23);
    std::uint64_t low = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        if (rng.skewedBelow(100, 3.0) < 20)
            ++low;
    }
    // A cubic skew puts far more than 20% of the mass below 20.
    EXPECT_GT(static_cast<double>(low) / trials, 0.5);
}

} // namespace
} // namespace csp
