/**
 * @file
 * Run-provenance tests: the config digest is stable under identical
 * inputs and sensitive to every class of knob, the trace content
 * digest pins workload generation, and the manifest round-trips
 * through the cspdiff parsers.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/config.h"
#include "core/run_manifest.h"
#include "diff/csp_diff.h"
#include "trace/trace.h"
#include "workloads/registry.h"

namespace csp {
namespace {

TEST(ConfigDigest, StableAcrossIdenticalConfigs)
{
    SystemConfig a;
    SystemConfig b;
    EXPECT_EQ(configDigest(a), configDigest(b));
}

TEST(ConfigDigest, SensitiveToEveryKnobClass)
{
    const SystemConfig base;
    const std::uint64_t reference = configDigest(base);

    SystemConfig seed = base;
    seed.seed += 1;
    EXPECT_NE(configDigest(seed), reference);

    SystemConfig memory = base;
    memory.memory.dram_latency += 10;
    EXPECT_NE(configDigest(memory), reference);

    SystemConfig context = base;
    context.context.cst_entries *= 2;
    EXPECT_NE(configDigest(context), reference);

    SystemConfig degree = base;
    degree.context.max_degree += 1;
    EXPECT_NE(configDigest(degree), reference);

    SystemConfig softmax = base;
    softmax.context.softmax_exploration =
        !softmax.context.softmax_exploration;
    EXPECT_NE(configDigest(softmax), reference);
}

TEST(ConfigDigest, HexDigestIsSixteenHexDigits)
{
    const std::string hex = hexDigest(configDigest(SystemConfig{}));
    ASSERT_EQ(hex.size(), 16u);
    for (const char c : hex) {
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
            << "unexpected digest character: " << c;
    }
}

trace::TraceBuffer
generateTrace(std::uint64_t seed, std::uint64_t scale)
{
    workloads::WorkloadParams params;
    params.seed = seed;
    params.scale = scale;
    const auto workload = workloads::Registry::builtin().create("bst");
    return workload->generate(params);
}

TEST(TraceDigest, SameSeedSameDigest)
{
    const trace::TraceBuffer a = generateTrace(1, 2000);
    const trace::TraceBuffer b = generateTrace(1, 2000);
    EXPECT_EQ(a.contentDigest(), b.contentDigest());
}

TEST(TraceDigest, ChangedSeedChangesDigest)
{
    const trace::TraceBuffer a = generateTrace(1, 2000);
    const trace::TraceBuffer b = generateTrace(2, 2000);
    EXPECT_NE(a.contentDigest(), b.contentDigest());
}

TEST(TraceDigest, ChangedScaleChangesDigest)
{
    const trace::TraceBuffer a = generateTrace(1, 2000);
    const trace::TraceBuffer b = generateTrace(1, 4000);
    EXPECT_NE(a.contentDigest(), b.contentDigest());
}

TEST(RunManifest, JsonParsesAndCarriesIdentity)
{
    SystemConfig config;
    config.seed = 42;
    RunManifest manifest = makeRunManifest("test", config);
    manifest.seed = 42;
    manifest.workloads = "bst";
    manifest.prefetchers = "context";

    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(diff::parseJsonFlat(manifest.toJson(), doc, &error))
        << error;

    const diff::FlatValue *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->text, "csp-run-manifest-v1");

    const diff::FlatValue *digest = doc.find("config_digest");
    ASSERT_NE(digest, nullptr);
    EXPECT_EQ(digest->text, hexDigest(configDigest(config)));

    const diff::FlatValue *seed = doc.find("seed");
    ASSERT_NE(seed, nullptr);
    EXPECT_TRUE(seed->is_number);
    EXPECT_EQ(seed->number, 42.0);
}

TEST(RunManifest, CsvCommentRoundTripsThroughCsvParser)
{
    RunManifest manifest = makeRunManifest("test", SystemConfig{});
    std::ostringstream csv;
    manifest.writeCsvComment(csv);
    csv << "name,value\nrow,1\n";

    diff::FlatDoc doc;
    std::string error;
    ASSERT_TRUE(diff::parseCsvFlat(csv.str(), doc, &error)) << error;

    const diff::FlatValue *tool = doc.find("manifest.tool");
    ASSERT_NE(tool, nullptr);
    EXPECT_EQ(tool->text, "test");
    EXPECT_NE(doc.find("manifest.config_digest"), nullptr);
    EXPECT_NE(doc.find("row.value"), nullptr);
}

TEST(RunManifest, SameConfigProducesSameDigestFields)
{
    SystemConfig config;
    const RunManifest a = makeRunManifest("test", config);
    const RunManifest b = makeRunManifest("test", config);
    EXPECT_EQ(a.config_digest, b.config_digest);

    SystemConfig other = config;
    other.context.history_entries += 1;
    const RunManifest c = makeRunManifest("test", other);
    EXPECT_NE(a.config_digest, c.config_digest);
}

} // namespace
} // namespace csp
