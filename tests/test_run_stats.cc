/** @file Unit tests for RunStats derived metrics (target prefetch
 *  distance of paper section 4.3, JSON export). */

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/simulator.h"

namespace csp::sim {
namespace {

RunStats
sampleStats()
{
    RunStats stats;
    stats.instructions = 1000000;
    stats.cycles = 500000; // IPC 2.0
    stats.demand_accesses = 300000;
    stats.l1_misses = 30000;
    stats.l2_demand_misses = 15000; // L2 miss rate 0.5
    stats.classes[static_cast<std::size_t>(
        AccessClass::HitOlderDemand)] = 270000;
    stats.classes[static_cast<std::size_t>(
        AccessClass::MissNotPrefetched)] = 30000;
    return stats;
}

TEST(RunStats, DerivedRatios)
{
    const RunStats stats = sampleStats();
    EXPECT_DOUBLE_EQ(stats.ipc(), 2.0);
    EXPECT_DOUBLE_EQ(stats.cpi(), 0.5);
    EXPECT_DOUBLE_EQ(stats.memFraction(), 0.3);
    EXPECT_DOUBLE_EQ(stats.l2MissRate(), 0.5);
    EXPECT_DOUBLE_EQ(stats.l1Mpki(), 30.0);
    EXPECT_DOUBLE_EQ(stats.l2Mpki(), 15.0);
}

TEST(RunStats, TargetDistanceMatchesPaperFormula)
{
    // Paper section 4.3: penalty = 20 + 0.5*300 = 170 cycles;
    // distance = 170 * 2.0 IPC * 0.3 mem = 102 accesses.
    const RunStats stats = sampleStats();
    const MemoryConfig memory;
    EXPECT_NEAR(stats.targetPrefetchDistance(memory), 102.0, 1e-9);
}

TEST(RunStats, TargetDistanceZeroOnEmptyRun)
{
    const RunStats stats;
    const MemoryConfig memory;
    EXPECT_DOUBLE_EQ(stats.targetPrefetchDistance(memory), 0.0);
}

TEST(RunStats, JsonContainsKeyFields)
{
    const std::string json = sampleStats().toJson();
    EXPECT_NE(json.find("\"instructions\":1000000"),
              std::string::npos);
    EXPECT_NE(json.find("\"ipc\":2"), std::string::npos);
    EXPECT_NE(json.find("\"classes\":{"), std::string::npos);
    EXPECT_NE(json.find("\"hit-older-demand\":270000"),
              std::string::npos);
    // Balanced braces.
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
}

TEST(RunStats, JsonStartsAndEndsAsObject)
{
    const std::string json = sampleStats().toJson();
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

} // namespace
} // namespace csp::sim
