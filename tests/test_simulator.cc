/** @file End-to-end simulator tests: timing sanity, accounting
 *  invariants, and prefetcher benefit on the flagship workloads. */

#include <gtest/gtest.h>

#include "core/profiling.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace csp::sim {
namespace {

trace::TraceBuffer
makeTrace(const std::string &name, std::uint64_t scale = 60000)
{
    workloads::WorkloadParams params;
    params.scale = scale;
    params.seed = 2;
    return workloads::Registry::builtin().create(name)->generate(
        params);
}

RunStats
runWith(const trace::TraceBuffer &trace, const std::string &pf_name)
{
    SystemConfig config;
    auto prefetcher = makePrefetcher(pf_name, config);
    Simulator simulator(config);
    return simulator.run(trace, *prefetcher);
}

TEST(Simulator, InstructionCountMatchesTrace)
{
    const auto trace = makeTrace("array");
    const RunStats stats = runWith(trace, "none");
    EXPECT_EQ(stats.instructions, trace.instructions());
    EXPECT_EQ(stats.demand_accesses, trace.memAccesses());
}

TEST(Simulator, IpcWithinPhysicalBounds)
{
    for (const std::string name : {"array", "list", "hashtest"}) {
        const RunStats stats = runWith(makeTrace(name), "none");
        EXPECT_GT(stats.ipc(), 0.0) << name;
        EXPECT_LE(stats.ipc(), 4.0) << name;
    }
}

TEST(Simulator, ClassificationPartitionsDemandAccesses)
{
    for (const std::string pf : {"none", "sms", "context"}) {
        const RunStats stats = runWith(makeTrace("list"), pf);
        std::uint64_t sum = 0;
        for (std::size_t c = 0;
             c < static_cast<std::size_t>(AccessClass::Count); ++c) {
            sum += stats.classes[c];
        }
        EXPECT_EQ(sum, stats.demand_accesses) << pf;
    }
}

TEST(Simulator, NoPrefetcherMeansNoPrefetchCategories)
{
    const RunStats stats = runWith(makeTrace("list"), "none");
    EXPECT_EQ(stats.classCount(AccessClass::HitPrefetchedLine), 0u);
    EXPECT_EQ(stats.classCount(AccessClass::ShorterWait), 0u);
    EXPECT_EQ(stats.prefetch_never_hit, 0u);
}

TEST(Simulator, MpkiConsistentWithCounters)
{
    const RunStats stats = runWith(makeTrace("list"), "none");
    EXPECT_NEAR(stats.l1Mpki(),
                1000.0 * static_cast<double>(stats.l1_misses) /
                    static_cast<double>(stats.instructions),
                1e-9);
    EXPECT_LE(stats.l2_demand_misses, stats.l1_misses);
}

TEST(Simulator, DeterministicRuns)
{
    const auto trace = makeTrace("listsort");
    const RunStats a = runWith(trace, "context");
    const RunStats b = runWith(trace, "context");
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.hierarchy.prefetches_issued,
              b.hierarchy.prefetches_issued);
}

TEST(Simulator, ContextPrefetcherSpeedsUpLinkedTraversal)
{
    // The paper's headline behaviour: big gains on semantically
    // regular, spatially scattered pointer chasing.
    const auto trace = makeTrace("list", 150000);
    const RunStats base = runWith(trace, "none");
    const RunStats ctx = runWith(trace, "context");
    EXPECT_GT(ctx.ipc(), base.ipc() * 1.3);
    EXPECT_LT(ctx.l1Mpki(), base.l1Mpki());
    EXPECT_GT(ctx.classCount(AccessClass::HitPrefetchedLine), 0u);
}

TEST(Simulator, ContextPrefetcherBeatsSpatioTemporalOnLinkedList)
{
    const auto trace = makeTrace("list", 150000);
    const double ctx = runWith(trace, "context").ipc();
    const double sms = runWith(trace, "sms").ipc();
    const double ghb = runWith(trace, "ghb-gdc").ipc();
    EXPECT_GT(ctx, sms);
    EXPECT_GT(ctx, ghb);
}

TEST(Simulator, StridePrefetcherCoversStreamingWorkload)
{
    const auto trace = makeTrace("libquantum", 80000);
    const RunStats base = runWith(trace, "none");
    const RunStats stride = runWith(trace, "stride");
    EXPECT_GT(stride.ipc(), base.ipc() * 1.5);
}

TEST(Simulator, PrefetchersNeverBreakCorrectnessCounters)
{
    for (const std::string &pf : paperPrefetchers()) {
        const RunStats stats = runWith(makeTrace("bst"), pf);
        // Demand-side counters must not depend on the prefetcher.
        EXPECT_EQ(stats.demand_accesses,
                  runWith(makeTrace("bst"), "none").demand_accesses)
            << pf;
    }
}

TEST(Simulator, HitDepthHistogramPopulatedForContext)
{
    SystemConfig config;
    auto prefetcher = makePrefetcher("context", config);
    Simulator simulator(config);
    const auto trace = makeTrace("list", 100000);
    simulator.run(trace, *prefetcher);
    const Histogram *depths = prefetcher->hitDepths();
    ASSERT_NE(depths, nullptr);
    EXPECT_GT(depths->count(), 0u);
}

TEST(Simulator, ProfilerAttributesEveryPhase)
{
    SystemConfig config;
    auto prefetcher = makePrefetcher("context", config);
    Simulator simulator(config);
    prof::Profiler profiler;
    simulator.setProfiler(&profiler);
    simulator.run(makeTrace("bst"), *prefetcher);
    for (const prof::Phase phase :
         {prof::Phase::Replay, prof::Phase::MemAccess,
          prof::Phase::MemPrefetch, prof::Phase::PrefetchObserve,
          prof::Phase::PrefetchTrain, prof::Phase::PrefetchPredict}) {
        EXPECT_GT(profiler.calls(phase), 0u)
            << prof::phaseStatName(phase);
        EXPECT_GT(profiler.ns(phase), 0u)
            << prof::phaseStatName(phase);
    }
    // The profile lands in the stats report under prof.*.
    const stats::Report report = simulator.lastReport();
    ASSERT_TRUE(report.contains("prof.replay.ns"));
    EXPECT_GT(report.value("prof.replay.ns"), 0.0);
    ASSERT_TRUE(report.contains("prof.replay.ns_per_access"));
}

TEST(Simulator, ProfilingNeverChangesResults)
{
    const auto trace = makeTrace("listsort");
    const RunStats plain = runWith(trace, "context");
    SystemConfig config;
    auto prefetcher = makePrefetcher("context", config);
    Simulator simulator(config);
    prof::Profiler profiler;
    simulator.setProfiler(&profiler);
    const RunStats profiled = simulator.run(trace, *prefetcher);
    EXPECT_EQ(plain.instructions, profiled.instructions);
    EXPECT_EQ(plain.cycles, profiled.cycles);
    EXPECT_EQ(plain.l1_misses, profiled.l1_misses);
    EXPECT_EQ(plain.l2_demand_misses, profiled.l2_demand_misses);
    EXPECT_EQ(plain.hierarchy.prefetches_issued,
              profiled.hierarchy.prefetches_issued);
    for (std::size_t c = 0; c < plain.classes.size(); ++c)
        EXPECT_EQ(plain.classes[c], profiled.classes[c]);
}

TEST(Simulator, AccessClassNamesAreDistinct)
{
    std::set<std::string> names;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(AccessClass::Count); ++c) {
        names.insert(accessClassName(static_cast<AccessClass>(c)));
    }
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(AccessClass::Count));
}

} // namespace
} // namespace csp::sim
