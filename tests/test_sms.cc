/** @file Unit tests for the SMS prefetcher. */

#include <gtest/gtest.h>

#include <set>

#include "prefetch/sms.h"
#include "trace/context.h"

namespace csp::prefetch {
namespace {

class SmsTest : public ::testing::Test
{
  protected:
    AccessInfo
    access(Addr pc, Addr vaddr)
    {
        AccessInfo info;
        info.pc = pc;
        info.vaddr = vaddr;
        info.line_addr = alignDown(vaddr, 64);
        info.context = &ctx;
        return info;
    }

    /** Touch the lines of @p pattern within the region at @p base,
     *  triggering from the first pattern line with @p pc. */
    void
    visitRegion(SmsPrefetcher &pf, Addr base, Addr pc,
                std::initializer_list<unsigned> pattern,
                std::vector<PrefetchRequest> *first_out = nullptr)
    {
        bool first = true;
        for (unsigned line : pattern) {
            out.clear();
            pf.observe(access(pc, base + line * 64), out);
            if (first && first_out != nullptr)
                *first_out = out;
            first = false;
        }
    }

    SmsConfig config;
    trace::ContextSnapshot ctx;
    std::vector<PrefetchRequest> out;
};

TEST_F(SmsTest, LearnsRecurringRegionPattern)
{
    SmsPrefetcher pf(config);
    // Same (pc, trigger-offset) pattern over many distinct regions;
    // after AGT evictions train the PHT, new triggers predict.
    std::vector<PrefetchRequest> trigger_out;
    for (Addr region = 0; region < 64; ++region) {
        visitRegion(pf, 0x100000 + region * 2048, 0x400,
                    {0, 3, 7, 12}, &trigger_out);
    }
    EXPECT_FALSE(trigger_out.empty());
}

TEST_F(SmsTest, PredictedLinesMatchTrainedPattern)
{
    SmsPrefetcher pf(config);
    std::vector<PrefetchRequest> trigger_out;
    for (Addr region = 0; region < 64; ++region) {
        visitRegion(pf, 0x100000 + region * 2048, 0x400, {0, 3, 7},
                    &trigger_out);
    }
    ASSERT_EQ(trigger_out.size(), 2u);
    std::set<Addr> offsets;
    const Addr base = 0x100000 + 63 * 2048;
    for (const PrefetchRequest &req : trigger_out)
        offsets.insert((req.addr - base) / 64);
    EXPECT_TRUE(offsets.contains(3));
    EXPECT_TRUE(offsets.contains(7));
}

TEST_F(SmsTest, SingleLineRegionsDoNotTrain)
{
    SmsPrefetcher pf(config);
    std::vector<PrefetchRequest> trigger_out;
    for (Addr region = 0; region < 64; ++region) {
        visitRegion(pf, 0x100000 + region * 2048, 0x400, {5},
                    &trigger_out);
    }
    EXPECT_TRUE(trigger_out.empty());
}

TEST_F(SmsTest, DifferentTriggerOffsetsUseDifferentPatterns)
{
    SmsPrefetcher pf(config);
    // Train offset-0 triggers only.
    for (Addr region = 0; region < 64; ++region) {
        visitRegion(pf, 0x100000 + region * 2048, 0x400, {0, 9});
    }
    // A trigger at offset 5 has no trained pattern.
    out.clear();
    pf.observe(access(0x400, 0x100000 + 200 * 2048 + 5 * 64), out);
    EXPECT_TRUE(out.empty());
}

TEST_F(SmsTest, FinishFlushesLiveGenerations)
{
    SmsPrefetcher pf(config);
    // One region visited, never evicted from the AGT.
    visitRegion(pf, 0x100000, 0x400, {0, 4, 8});
    pf.finish(); // trains the PHT
    std::vector<PrefetchRequest> trigger_out;
    out.clear();
    pf.observe(access(0x400, 0x900000), trigger_out);
    EXPECT_FALSE(trigger_out.empty());
}

TEST_F(SmsTest, TriggerLineItselfNotPrefetched)
{
    SmsPrefetcher pf(config);
    std::vector<PrefetchRequest> trigger_out;
    for (Addr region = 0; region < 64; ++region) {
        visitRegion(pf, 0x100000 + region * 2048, 0x400, {2, 6},
                    &trigger_out);
    }
    const Addr base = 0x100000 + 63 * 2048;
    for (const PrefetchRequest &req : trigger_out)
        EXPECT_NE(req.addr, base + 2 * 64);
}

TEST_F(SmsTest, RepeatedSameLineStaysInFilter)
{
    SmsPrefetcher pf(config);
    // Hitting the same line repeatedly must not promote to the AGT.
    for (int i = 0; i < 10; ++i) {
        out.clear();
        pf.observe(access(0x400, 0x100000 + 5 * 64), out);
    }
    pf.finish();
    out.clear();
    pf.observe(access(0x400, 0x200000 + 5 * 64), out);
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace csp::prefetch
