/** @file Property tests over the 16 SPEC CPU2006 synthetic profiles:
 *  every profile must generate a trace whose instruction mix matches
 *  its configured parameters and whose streams exercise the address
 *  ranges they declare. */

#include <gtest/gtest.h>

#include <set>

#include "workloads/spec/spec_synth.h"

namespace csp::workloads::spec {
namespace {

class SpecProfileTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    trace::TraceBuffer
    generate(std::uint64_t scale = 40000)
    {
        SpecSynth workload(specProfile(GetParam()));
        WorkloadParams params;
        params.scale = scale;
        params.seed = 11;
        return workload.generate(params);
    }
};

TEST_P(SpecProfileTest, MemFractionMatchesProfile)
{
    const SpecProfile &profile = specProfile(GetParam());
    const trace::TraceBuffer buffer = generate();
    const double measured =
        static_cast<double>(buffer.memAccesses()) /
        static_cast<double>(buffer.instructions());
    EXPECT_NEAR(measured, profile.mem_fraction,
                profile.mem_fraction * 0.15)
        << GetParam();
}

TEST_P(SpecProfileTest, BranchFractionMatchesProfile)
{
    const SpecProfile &profile = specProfile(GetParam());
    const trace::TraceBuffer buffer = generate();
    std::uint64_t branches = 0;
    trace::TraceCursor cursor = buffer.cursor();
    while (const trace::TraceRecord *rec = cursor.next()) {
        if (rec->kind == trace::InstKind::Branch)
            ++branches;
    }
    const double measured =
        static_cast<double>(branches) /
        static_cast<double>(buffer.instructions());
    EXPECT_NEAR(measured, profile.branch_fraction,
                profile.branch_fraction * 0.2 + 0.01)
        << GetParam();
}

TEST_P(SpecProfileTest, EveryStreamContributesAccesses)
{
    const SpecProfile &profile = specProfile(GetParam());
    const trace::TraceBuffer buffer = generate(60000);
    // Streams live in disjoint 256MB slices starting at 0x20000000.
    std::set<std::size_t> slices_touched;
    trace::TraceCursor cursor = buffer.cursor();
    while (const trace::TraceRecord *rec = cursor.next()) {
        if (rec->isMem()) {
            slices_touched.insert(static_cast<std::size_t>(
                (rec->vaddr - 0x20000000ull) >> 28));
        }
    }
    EXPECT_EQ(slices_touched.size(), profile.streams.size())
        << GetParam();
}

TEST_P(SpecProfileTest, StreamsStayInsideTheirRegions)
{
    const SpecProfile &profile = specProfile(GetParam());
    const trace::TraceBuffer buffer = generate();
    trace::TraceCursor cursor = buffer.cursor();
    while (const trace::TraceRecord *rec = cursor.next()) {
        if (!rec->isMem())
            continue;
        const std::uint64_t offset = rec->vaddr - 0x20000000ull;
        const std::size_t slice = offset >> 28;
        ASSERT_LT(slice, profile.streams.size()) << GetParam();
        EXPECT_LT(offset - (static_cast<std::uint64_t>(slice) << 28),
                  profile.streams[slice].region_bytes +
                      profile.streams[slice].region_bytes / 4 + 4096)
            << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProfiles, SpecProfileTest, ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const SpecProfile &profile : specProfiles())
            names.push_back(profile.name);
        return names;
    }()));

TEST(SpecProfiles, SixteenBenchmarksOfTable3)
{
    EXPECT_EQ(specProfiles().size(), 16u);
}

TEST(SpecProfilesDeathTest, UnknownProfileIsFatal)
{
    EXPECT_DEATH((void)specProfile("perlbench"), "unknown");
}

TEST(SpecProfiles, PointerHeavyBenchmarksHaveChaseStreams)
{
    for (const std::string name : {"mcf", "omnetpp", "astar"}) {
        bool has_chase = false;
        for (const StreamSpec &stream : specProfile(name).streams) {
            has_chase = has_chase ||
                        stream.kind == StreamKind::PointerChase;
        }
        EXPECT_TRUE(has_chase) << name;
    }
}

TEST(SpecProfiles, StreamingBenchmarksAreStrideDominated)
{
    for (const std::string name : {"lbm", "libquantum", "milc"}) {
        double stride_weight = 0.0;
        double total_weight = 0.0;
        for (const StreamSpec &stream : specProfile(name).streams) {
            total_weight += stream.weight;
            if (stream.kind == StreamKind::Stride)
                stride_weight += stream.weight;
        }
        EXPECT_GT(stride_weight / total_weight, 0.7) << name;
    }
}

} // namespace
} // namespace csp::workloads::spec
