/** @file Unit tests for stats primitives. */

#include <gtest/gtest.h>

#include "core/stats.h"

namespace csp {
namespace {

TEST(SaturatingCounter, StartsAtZero)
{
    Score8 score;
    EXPECT_EQ(score.value(), 0);
}

TEST(SaturatingCounter, AddsWithinBounds)
{
    Score8 score;
    score.add(5);
    EXPECT_EQ(score.value(), 5);
    score.add(-3);
    EXPECT_EQ(score.value(), 2);
}

TEST(SaturatingCounter, SaturatesHigh)
{
    Score8 score;
    score.add(1000);
    EXPECT_EQ(score.value(), 127);
    score.add(1);
    EXPECT_EQ(score.value(), 127);
}

TEST(SaturatingCounter, SaturatesLow)
{
    Score8 score;
    score.add(-1000);
    EXPECT_EQ(score.value(), -128);
    score.add(-1);
    EXPECT_EQ(score.value(), -128);
}

TEST(SaturatingCounter, SetClamps)
{
    SaturatingCounter<int, -4, 4> c;
    c.set(100);
    EXPECT_EQ(c.value(), 4);
    c.set(-100);
    EXPECT_EQ(c.value(), -4);
}

TEST(SaturatingCounter, Comparison)
{
    Score8 a(3);
    Score8 b(7);
    EXPECT_TRUE(a < b);
    EXPECT_FALSE(b < a);
}

TEST(Histogram, CountsSamples)
{
    Histogram h(128, 128);
    h.sample(0);
    h.sample(5);
    h.sample(127);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(128, 128);
    h.sample(128);
    h.sample(10000);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, CdfMonotonic)
{
    Histogram h(100, 100);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    double prev = -1.0;
    for (std::uint64_t v = 0; v < 100; v += 5) {
        const double cdf = h.cdfAt(v);
        EXPECT_GE(cdf, prev);
        prev = cdf;
    }
    EXPECT_DOUBLE_EQ(h.cdfAt(99), 1.0);
}

TEST(Histogram, CdfAtMedian)
{
    Histogram h(100, 100);
    for (int i = 0; i < 50; ++i)
        h.sample(10);
    for (int i = 0; i < 50; ++i)
        h.sample(90);
    EXPECT_NEAR(h.cdfAt(50), 0.5, 0.01);
}

TEST(Histogram, MeanOfUniformSamples)
{
    Histogram h(1000, 100);
    for (std::uint64_t v = 0; v < 1000; ++v)
        h.sample(v);
    EXPECT_NEAR(h.mean(), 499.5, 1.0);
}

TEST(Histogram, MeanClampsOverflowAtMax)
{
    Histogram h(10, 10);
    h.sample(1000000);
    EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Histogram, ClearResets)
{
    Histogram h(10, 10);
    h.sample(3);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.cdfAt(9), 0.0);
}

TEST(Histogram, EmptyCdfIsZero)
{
    Histogram h(10, 10);
    EXPECT_DOUBLE_EQ(h.cdfAt(9), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Log2Histogram, PercentileOfEmptyIsZero)
{
    Log2Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(Log2Histogram, PercentileOfSingleSampleIsTheSample)
{
    // A lone sample must come back exactly, not rounded up to its
    // power-of-two bucket ceiling (147 lives in the [128, 255]
    // bucket).
    Log2Histogram h;
    h.sample(147);
    EXPECT_EQ(h.percentile(0.01), 147u);
    EXPECT_EQ(h.percentile(0.5), 147u);
    EXPECT_EQ(h.percentile(1.0), 147u);
}

TEST(Log2Histogram, PercentileClampsP)
{
    Log2Histogram h;
    h.sample(2);
    h.sample(200);
    EXPECT_EQ(h.percentile(-0.5), h.percentile(0.0));
    EXPECT_EQ(h.percentile(2.0), h.percentile(1.0));
}

TEST(Log2Histogram, PercentileBucketEdges)
{
    Log2Histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v)
        h.sample(v);
    // Rank 50 (p50) is value 50, in the [32, 63] bucket.
    EXPECT_EQ(h.percentile(0.5), 63u);
    EXPECT_EQ(h.percentile(1.0), 127u);
}

TEST(EwmaRate, ConvergesUp)
{
    EwmaRate rate(0.05, 0.0);
    for (int i = 0; i < 500; ++i)
        rate.record(true);
    EXPECT_GT(rate.value(), 0.95);
}

TEST(EwmaRate, ConvergesDown)
{
    EwmaRate rate(0.05, 1.0);
    for (int i = 0; i < 500; ++i)
        rate.record(false);
    EXPECT_LT(rate.value(), 0.05);
}

TEST(EwmaRate, TracksMixedRate)
{
    EwmaRate rate(0.01, 0.5);
    // 30% success rate.
    for (int i = 0; i < 5000; ++i)
        rate.record(i % 10 < 3);
    EXPECT_NEAR(rate.value(), 0.3, 0.1);
}

TEST(EwmaRate, StaysInUnitInterval)
{
    EwmaRate rate(0.5, 0.5);
    for (int i = 0; i < 100; ++i) {
        rate.record(i % 2 == 0);
        EXPECT_GE(rate.value(), 0.0);
        EXPECT_LE(rate.value(), 1.0);
    }
}

} // namespace
} // namespace csp
