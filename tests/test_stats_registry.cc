/** @file Unit tests for the hierarchical stats registry: registration
 *  and lookup, duplicate/conflict panics, formula stats, interval
 *  sampling semantics (deltas vs cumulative), the nested JSON export,
 *  and end-to-end consistency between the registry and RunStats. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "core/stats.h"
#include "core/stats_registry.h"
#include "prefetch/context/context_prefetcher.h"
#include "sim/simulator.h"
#include "workloads/registry.h"

namespace csp::stats {
namespace {

TEST(StatsRegistry, RegistrationAndLookup)
{
    Registry registry;
    std::uint64_t hits = 0;
    registry.counter("mem.l1.hits", &hits, "L1 hits");
    registry.counter("mem.l1.misses", [] { return std::uint64_t{7}; });
    registry.gauge("mem.l1.temp", [] { return 1.5; });

    EXPECT_EQ(registry.size(), 3u);
    EXPECT_TRUE(registry.contains("mem.l1.hits"));
    EXPECT_FALSE(registry.contains("mem.l1"));
    EXPECT_FALSE(registry.contains("mem.l1.nothere"));

    hits = 42;
    EXPECT_DOUBLE_EQ(registry.value("mem.l1.hits"), 42.0);
    EXPECT_DOUBLE_EQ(registry.value("mem.l1.misses"), 7.0);
    EXPECT_DOUBLE_EQ(registry.value("mem.l1.temp"), 1.5);
}

TEST(StatsRegistryDeathTest, DuplicateNamePanics)
{
    Registry registry;
    std::uint64_t v = 0;
    registry.counter("sim.cycles", &v);
    EXPECT_DEATH(registry.counter("sim.cycles", &v), "duplicate");
}

TEST(StatsRegistryDeathTest, LeafVersusGroupConflictPanics)
{
    Registry registry;
    std::uint64_t v = 0;
    registry.counter("sim.ipc", &v);
    EXPECT_DEATH(registry.counter("sim.ipc.raw", &v), "conflicts");
}

TEST(StatsRegistryDeathTest, InvalidNamePanics)
{
    Registry registry;
    std::uint64_t v = 0;
    EXPECT_DEATH(registry.counter("Sim.Cycles", &v), "invalid");
    EXPECT_DEATH(registry.counter("sim..cycles", &v), "invalid");
    EXPECT_DEATH(registry.counter("", &v), "invalid");
}

TEST(StatsRegistryDeathTest, UnknownStatPanics)
{
    Registry registry;
    EXPECT_DEATH((void)registry.value("no.such.stat"), "unknown");
}

TEST(StatsRegistry, FormulaComputesScaledRatio)
{
    Registry registry;
    std::uint64_t misses = 0;
    std::uint64_t insts = 0;
    // Registered before its operands: resolution is lazy by name.
    registry.formula("sim.mpki", "mem.misses", "sim.insts", 1000.0);
    registry.counter("mem.misses", &misses);
    registry.counter("sim.insts", &insts);

    EXPECT_DOUBLE_EQ(registry.value("sim.mpki"), 0.0); // den == 0
    misses = 30;
    insts = 2000;
    EXPECT_DOUBLE_EQ(registry.value("sim.mpki"), 15.0);
}

TEST(StatsRegistry, DistributionSummary)
{
    Registry registry;
    Histogram hist(16, 16);
    registry.distribution("pq.depth", &hist);
    hist.sample(2);
    hist.sample(4);
    hist.sample(6);
    const DistSummary s = registry.distSummary("pq.depth");
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.mean, 4.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 6.0);
}

TEST(StatsRegistry, FilterMatchesDottedPrefixes)
{
    EXPECT_TRUE(Registry::matchesFilter("mem.l1.misses", ""));
    EXPECT_TRUE(Registry::matchesFilter("mem.l1.misses", "mem"));
    EXPECT_TRUE(Registry::matchesFilter("mem.l1.misses", "mem.l1"));
    EXPECT_TRUE(
        Registry::matchesFilter("mem.l1.misses", "mem.l1.misses"));
    // A prefix must end on a dot boundary, not mid-segment.
    EXPECT_FALSE(Registry::matchesFilter("mem.l1.misses", "mem.l"));
    EXPECT_FALSE(Registry::matchesFilter("mem.l1.misses", "context"));
}

TEST(StatsRegistry, ReportSurvivesSourceTeardown)
{
    Report report;
    {
        Registry registry;
        std::uint64_t v = 9;
        registry.counter("sim.cycles", &v);
        report = registry.report();
    } // registry and v are gone; the report owns its values
    ASSERT_TRUE(report.contains("sim.cycles"));
    EXPECT_DOUBLE_EQ(report.value("sim.cycles"), 9.0);
}

TEST(StatsRegistry, IntervalRowsHoldDeltasCumulativeHoldsTotals)
{
    Registry registry;
    std::uint64_t count = 0;
    double level = 0.0;
    std::uint64_t num = 0;
    registry.counter("sim.count", &count);
    registry.gauge("sim.level", [&level] { return level; });
    registry.counter("sim.num", &num);
    registry.formula("sim.rate", "sim.num", "sim.count");

    IntervalSampler sampler(registry, 100);
    ASSERT_TRUE(sampler.enabled());

    count = 10;
    num = 5;
    level = 1.0;
    ASSERT_TRUE(sampler.due(100));
    sampler.sample(100);

    count = 30;
    num = 15;
    level = 2.0;
    EXPECT_FALSE(sampler.due(199));
    ASSERT_TRUE(sampler.due(200));
    sampler.sample(200);

    const TimeSeries &series = sampler.series();
    ASSERT_EQ(series.rows.size(), 2u);
    const int c = series.columnIndex("sim.count");
    const int g = series.columnIndex("sim.level");
    const int f = series.columnIndex("sim.rate");
    ASSERT_GE(c, 0);
    ASSERT_GE(g, 0);
    ASSERT_GE(f, 0);
    EXPECT_EQ(series.columnIndex("sim.nothere"), -1);

    // Counters: per-interval deltas. Gauges: point samples. Formulas:
    // ratios of the counter deltas (second interval: 10 / 20).
    EXPECT_DOUBLE_EQ(series.rows[0].values[c], 10.0);
    EXPECT_DOUBLE_EQ(series.rows[1].values[c], 20.0);
    EXPECT_DOUBLE_EQ(series.rows[0].values[g], 1.0);
    EXPECT_DOUBLE_EQ(series.rows[1].values[g], 2.0);
    EXPECT_DOUBLE_EQ(series.rows[0].values[f], 0.5);
    EXPECT_DOUBLE_EQ(series.rows[1].values[f], 0.5);

    // The registry itself still reads cumulative totals.
    EXPECT_DOUBLE_EQ(registry.value("sim.count"), 30.0);

    // finish() emits the final partial interval exactly once.
    count = 31;
    sampler.finish(210);
    ASSERT_EQ(sampler.series().rows.size(), 3u);
    EXPECT_DOUBLE_EQ(sampler.series().rows[2].values[c], 1.0);
    EXPECT_EQ(sampler.series().rows[2].instructions, 210u);
}

TEST(StatsRegistry, SamplerFilterSelectsColumns)
{
    Registry registry;
    std::uint64_t a = 0, b = 0;
    registry.counter("mem.reads", &a);
    registry.counter("context.lookups", &b);
    IntervalSampler sampler(registry, 10, "context");
    ASSERT_EQ(sampler.series().columns.size(), 1u);
    EXPECT_EQ(sampler.series().columns[0], "context.lookups");
}

TEST(StatsRegistry, CsvHasHeaderAndOneLinePerRow)
{
    Registry registry;
    std::uint64_t v = 0;
    registry.counter("sim.count", &v);
    IntervalSampler sampler(registry, 50);
    v = 5;
    sampler.sample(50);
    v = 9;
    sampler.sample(100);
    std::ostringstream out;
    sampler.series().writeCsv(out);
    EXPECT_EQ(out.str(), "instructions,sim.count\n50,5\n100,4\n");
}

// ---------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------

/** Tiny recursive-descent parser for the exported JSON subset (objects
 *  and numbers), flattening nested keys back to dotted paths. */
class MiniJson
{
  public:
    explicit MiniJson(const std::string &text) : text_(text)
    {
        parseObject("");
    }

    bool ok() const { return ok_ && pos_ == text_.size(); }

    bool has(const std::string &path) const
    {
        return values_.count(path) != 0;
    }

    double
    at(const std::string &path) const
    {
        const auto it = values_.find(path);
        return it == values_.end() ? -1.0 : it->second;
    }

  private:
    void
    parseObject(const std::string &prefix)
    {
        if (!eat('{'))
            return;
        if (eat('}'))
            return;
        do {
            const std::string key = parseString();
            if (!eat(':'))
                return;
            const std::string path =
                prefix.empty() ? key : prefix + "." + key;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '{')
                parseObject(path);
            else
                values_[path] = parseNumber();
        } while (eat(','));
        if (!eat('}'))
            ok_ = false;
    }

    std::string
    parseString()
    {
        if (!eat('"')) {
            ok_ = false;
            return "";
        }
        std::string s;
        while (pos_ < text_.size() && text_[pos_] != '"')
            s += text_[pos_++];
        if (!eat('"'))
            ok_ = false;
        return s;
    }

    double
    parseNumber()
    {
        skipSpace();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E')) {
            ++pos_;
        }
        if (pos_ == start) {
            ok_ = false;
            return 0.0;
        }
        return std::stod(text_.substr(start, pos_ - start));
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }

    bool
    eat(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    bool ok_ = true;
    std::map<std::string, double> values_;
};

TEST(StatsRegistry, JsonRoundTripsNestedGroups)
{
    Registry registry;
    std::uint64_t misses = 123;
    std::uint64_t insts = 1000;
    Histogram hist(8, 8);
    hist.sample(3);
    registry.counter("mem.l1.misses", &misses);
    registry.counter("sim.instructions", &insts);
    registry.formula("sim.mpki", "mem.l1.misses", "sim.instructions",
                     1000.0);
    registry.distribution("context.pq.hit_depth", &hist);

    const MiniJson json(registry.toJson());
    ASSERT_TRUE(json.ok());
    EXPECT_DOUBLE_EQ(json.at("mem.l1.misses"), 123.0);
    EXPECT_DOUBLE_EQ(json.at("sim.instructions"), 1000.0);
    EXPECT_DOUBLE_EQ(json.at("sim.mpki"), 123.0);
    // Distributions export their summary as a leaf object.
    EXPECT_DOUBLE_EQ(json.at("context.pq.hit_depth.count"), 1.0);
    EXPECT_DOUBLE_EQ(json.at("context.pq.hit_depth.mean"), 3.0);
}

TEST(StatsRegistry, JsonFilterKeepsOnlyPrefix)
{
    Registry registry;
    std::uint64_t a = 1, b = 2;
    registry.counter("mem.reads", &a);
    registry.counter("context.lookups", &b);
    const MiniJson json(registry.toJson("context"));
    ASSERT_TRUE(json.ok());
    EXPECT_TRUE(json.has("context.lookups"));
    EXPECT_FALSE(json.has("mem.reads"));
}

// ---------------------------------------------------------------------
// End to end: the registry is the source RunStats is populated from.
// ---------------------------------------------------------------------

TEST(StatsRegistry, EndToEndRegistryMatchesRunStats)
{
    workloads::WorkloadParams params;
    params.scale = 60000;
    params.seed = 7;
    const trace::TraceBuffer trace =
        workloads::Registry::builtin().create("list")->generate(
            params);

    SystemConfig config;
    config.seed = 7;
    prefetch::ctx::ContextPrefetcher prefetcher(config.context,
                                                config.seed);
    sim::Simulator simulator(config);
    simulator.setSampling(10000);
    const sim::RunStats stats = simulator.run(trace, prefetcher);
    const Report &report = simulator.lastReport();

    // The acceptance groups all exist.
    ASSERT_TRUE(report.contains("sim.instructions"));
    ASSERT_TRUE(report.contains("mem.l1.misses"));
    ASSERT_TRUE(report.contains("mem.mshr.occupancy_avg"));
    ASSERT_TRUE(report.contains("context.bandit.epsilon"));

    // RunStats (the public result) agrees with the registry snapshot.
    EXPECT_DOUBLE_EQ(report.value("sim.instructions"),
                     static_cast<double>(stats.instructions));
    EXPECT_DOUBLE_EQ(report.value("sim.cycles"),
                     static_cast<double>(stats.cycles));
    EXPECT_DOUBLE_EQ(report.value("mem.l1.demand_accesses"),
                     static_cast<double>(stats.demand_accesses));
    EXPECT_DOUBLE_EQ(report.value("mem.l1.misses"),
                     static_cast<double>(stats.l1_misses));
    EXPECT_DOUBLE_EQ(report.value("mem.l2.demand_misses"),
                     static_cast<double>(stats.l2_demand_misses));
    EXPECT_DOUBLE_EQ(report.value("mem.prefetch.never_hit"),
                     static_cast<double>(stats.prefetch_never_hit));
    EXPECT_NEAR(report.value("sim.ipc"), stats.ipc(), 1e-12);
    EXPECT_NEAR(report.value("sim.l1_mpki"), stats.l1Mpki(), 1e-12);

    // Figure-9 classes sum to the demand accesses, through the
    // registry's names.
    double class_sum = 0.0;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(sim::AccessClass::Count); ++c) {
        class_sum += report.value(
            std::string("sim.class.") +
            sim::accessClassName(static_cast<sim::AccessClass>(c)));
    }
    EXPECT_DOUBLE_EQ(class_sum,
                     static_cast<double>(stats.demand_accesses));

    // Interval series: counter deltas sum back to the cumulative total.
    const TimeSeries &series = simulator.lastSeries();
    ASSERT_FALSE(series.empty());
    const int col = series.columnIndex("mem.l1.demand_accesses");
    ASSERT_GE(col, 0);
    double delta_sum = 0.0;
    for (const TimeSeries::Row &row : series.rows)
        delta_sum += row.values[col];
    EXPECT_DOUBLE_EQ(delta_sum,
                     static_cast<double>(stats.demand_accesses));
    EXPECT_EQ(series.rows.back().instructions, stats.instructions);
}

TEST(StatsRegistry, EndToEndEpsilonDecaysOnLinkedList)
{
    workloads::WorkloadParams params;
    params.scale = 20000;
    const trace::TraceBuffer trace =
        workloads::Registry::builtin().create("list")->generate(
            params);

    SystemConfig config;
    prefetch::ctx::ContextPrefetcher prefetcher(config.context,
                                                config.seed);
    sim::Simulator simulator(config);
    simulator.setSampling(300, "context.bandit");
    simulator.run(trace, prefetcher);

    const TimeSeries &series = simulator.lastSeries();
    const int eps = series.columnIndex("context.bandit.epsilon");
    ASSERT_GE(eps, 0);
    ASSERT_GE(series.rows.size(), 20u);

    // The exploration rate starts at epsilon_max (untrained bandit)
    // and decays as accuracy converges; after warm-up it never climbs
    // back towards the untrained level.
    const double first = series.rows.front().values[eps];
    EXPECT_NEAR(first, config.context.epsilon_max, 0.02);
    double post_warmup_max = 0.0;
    for (std::size_t i = 10; i < series.rows.size(); ++i) {
        post_warmup_max =
            std::max(post_warmup_max, series.rows[i].values[eps]);
    }
    EXPECT_LT(post_warmup_max, first);
}

TEST(StatsRegistry, EndToEndRunsAreDeterministic)
{
    workloads::WorkloadParams params;
    params.scale = 30000;
    params.seed = 3;
    const trace::TraceBuffer trace =
        workloads::Registry::builtin().create("list")->generate(
            params);

    SystemConfig config;
    config.seed = 3;
    std::string first;
    for (int i = 0; i < 2; ++i) {
        prefetch::ctx::ContextPrefetcher prefetcher(config.context,
                                                    config.seed);
        sim::Simulator simulator(config);
        simulator.run(trace, prefetcher);
        const std::string json = simulator.lastReport().toJson();
        if (i == 0)
            first = json;
        else
            EXPECT_EQ(first, json);
    }
}

} // namespace
} // namespace csp::stats
