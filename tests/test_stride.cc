/** @file Unit tests for the stride prefetcher. */

#include <gtest/gtest.h>

#include "prefetch/stride.h"
#include "trace/context.h"

namespace csp::prefetch {
namespace {

AccessInfo
access(Addr pc, Addr vaddr, const trace::ContextSnapshot &ctx)
{
    AccessInfo info;
    info.pc = pc;
    info.vaddr = vaddr;
    info.line_addr = alignDown(vaddr, 64);
    info.context = &ctx;
    return info;
}

class StrideTest : public ::testing::Test
{
  protected:
    StrideConfig config;
    trace::ContextSnapshot ctx;
    std::vector<PrefetchRequest> out;
};

TEST_F(StrideTest, DetectsConstantStride)
{
    StridePrefetcher pf(config);
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(access(0x400, 0x10000 + i * 256, ctx), out);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].addr, alignDown(0x10000 + 7 * 256 + 256, 64));
}

TEST_F(StrideTest, NoPredictionWithoutConfidence)
{
    StridePrefetcher pf(config);
    out.clear();
    pf.observe(access(0x400, 0x10000, ctx), out);
    pf.observe(access(0x400, 0x10100, ctx), out);
    EXPECT_TRUE(out.empty());
}

TEST_F(StrideTest, RandomAddressesNeverPredict)
{
    StridePrefetcher pf(config);
    const Addr addrs[] = {0x1000, 0x9000, 0x2340, 0x88000, 0x1700,
                          0x55000, 0x3000, 0x61000};
    for (Addr a : addrs) {
        out.clear();
        pf.observe(access(0x400, a, ctx), out);
    }
    EXPECT_TRUE(out.empty());
}

TEST_F(StrideTest, NegativeStridesWork)
{
    StridePrefetcher pf(config);
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(access(0x400, 0x100000 - i * 128, ctx), out);
    }
    ASSERT_FALSE(out.empty());
    EXPECT_LT(out[0].addr, 0x100000u - 7 * 128);
}

TEST_F(StrideTest, PerPcStreamsAreIndependent)
{
    StridePrefetcher pf(config);
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(access(0x400, 0x10000 + i * 256, ctx), out);
        out.clear();
        pf.observe(access(0x800, 0x90000 + i * 512, ctx), out);
    }
    // The PC 0x800 stream predicts its own stride.
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].addr,
              alignDown(0x90000 + 7 * 512 + 512, 64));
}

TEST_F(StrideTest, DegreeEmitsMultipleLines)
{
    config.degree = 4;
    StridePrefetcher pf(config);
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(access(0x400, 0x10000 + i * 256, ctx), out);
    }
    EXPECT_EQ(out.size(), 4u);
}

TEST_F(StrideTest, SubLineStridesDeduplicateLines)
{
    config.degree = 2;
    StridePrefetcher pf(config);
    // Stride 8 within a 64B line: successive predictions fall in the
    // same line and must not be emitted twice.
    for (int i = 0; i < 10; ++i) {
        out.clear();
        pf.observe(access(0x400, 0x10000 + i * 8, ctx), out);
    }
    EXPECT_LE(out.size(), 1u);
}

TEST_F(StrideTest, StridePredictionsAreLineAligned)
{
    StridePrefetcher pf(config);
    for (int i = 0; i < 8; ++i) {
        out.clear();
        pf.observe(access(0x400, 0x10004 + i * 200, ctx), out);
    }
    for (const PrefetchRequest &req : out)
        EXPECT_EQ(req.addr % 64, 0u);
}

} // namespace
} // namespace csp::prefetch
