/** @file The sweep observatory's contract: the --events-out journal is
 *  well-formed (envelope, ordering, cell pairing, roll-up counts) and
 *  strictly side-band (cell CSV bit-identical with events on or off,
 *  at any job count); csptop's renderers are deterministic against
 *  golden output; shard journals merge time-ordered and mismatched
 *  identities are refused; the result-cache LRU trim evicts
 *  oldest-mtime-first; warm sweeps attribute their read/parse cost. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/content_store.h"
#include "diff/sweep_report.h"
#include "sim/experiment.h"
#include "sim/result_cache.h"
#include "sim/sweep_events.h"
#include "sim/sweep_io.h"

namespace csp {
namespace {

const std::vector<std::string> kWorkloads = {"array", "list", "bst"};
const std::vector<std::string> kPrefetchers = {"none", "stride",
                                               "context"};

struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/csp_events_XXXXXX";
        const char *made = mkdtemp(tmpl);
        EXPECT_NE(made, nullptr);
        path = made != nullptr ? made : "";
    }

    ~TempDir()
    {
        if (!path.empty())
            std::filesystem::remove_all(path);
    }
};

sim::SweepResult
sweep(unsigned jobs, sim::SweepEventJournal *journal = nullptr)
{
    SystemConfig config;
    workloads::WorkloadParams params;
    params.scale = 12000;
    sim::SweepOptions options;
    options.verbose = false;
    options.jobs = jobs;
    options.journal = journal;
    return sim::runSweep(kWorkloads, kPrefetchers, params, config,
                         options);
}

std::string
cellCsv(const sim::SweepResult &result)
{
    std::ostringstream out;
    sim::writeSweepCsv(out, result);
    return out.str();
}

/** A fixed journal with known timings — the goldens below are exact,
 *  which is only possible because the renderers never consult the
 *  clock. Two workloads x two prefetchers, half cached, one worker
 *  idle-ish, a post-sweep trim. */
const char kSyntheticJournal[] =
    R"({"event":"sweep_start","t_ns":0,"seq":0,"shard":0,"schema":"csp-events-v1","unix_ns":1000000000000,"config_digest":"cafe01234567","seed":7,"scale":1000,"placement":"rand","workloads":"alpha,beta","prefetchers":"none,context","shard_count":1,"jobs":2,"git_sha":"deadbeef"}
{"event":"trace_gen","t_ns":1000000,"seq":1,"shard":0,"workload":"alpha","digest":"d1","records":10,"insts":100000,"accesses":30,"duration_ns":800000,"cached":1,"worker":0}
{"event":"trace_cache","t_ns":1200000,"seq":2,"shard":0,"workload":"beta","digest":"d2","records":10,"insts":100000,"worker":1}
{"event":"schedule","t_ns":1300000,"seq":3,"shard":0,"cells_total":4,"cells_owned":4,"insts_owned":400000,"trace_digest":"td"}
{"event":"cell_start","t_ns":1400000,"seq":4,"shard":0,"cell":0,"workload":"alpha","prefetcher":"none","worker":0}
{"event":"cell_start","t_ns":1400000,"seq":5,"shard":0,"cell":1,"workload":"alpha","prefetcher":"context","worker":1}
{"event":"cell_end","t_ns":1900000,"seq":6,"shard":0,"cell":1,"workload":"alpha","prefetcher":"context","worker":1,"source":"cached","duration_ns":500000,"read_ns":200000,"parse_ns":250000,"bytes":900,"insts":100000}
{"event":"cell_start","t_ns":2000000,"seq":7,"shard":0,"cell":3,"workload":"beta","prefetcher":"context","worker":1}
{"event":"heartbeat","t_ns":2500000,"seq":8,"shard":0,"cells_done":1,"cells_expected":4,"cells_cached":1,"insts_done":100000,"insts_total":400000,"insts_per_sec":50000000}
{"event":"cell_end","t_ns":3400000,"seq":9,"shard":0,"cell":0,"workload":"alpha","prefetcher":"none","worker":0,"source":"simulated","duration_ns":2000000,"verify_failed":0,"insts":100000}
{"event":"cell_start","t_ns":3500000,"seq":10,"shard":0,"cell":2,"workload":"beta","prefetcher":"none","worker":0}
{"event":"cell_end","t_ns":3900000,"seq":11,"shard":0,"cell":2,"workload":"beta","prefetcher":"none","worker":0,"source":"cached","duration_ns":400000,"read_ns":100000,"parse_ns":250000,"bytes":800,"insts":100000}
{"event":"cell_end","t_ns":5000000,"seq":12,"shard":0,"cell":3,"workload":"beta","prefetcher":"context","worker":1,"source":"simulated","duration_ns":3000000,"verify_failed":0,"insts":100000}
{"event":"sweep_end","t_ns":5100000,"seq":13,"shard":0,"cells_owned":4,"cells_cached":2,"cells_simulated":2,"trace_cache_hits":1,"cache_read_ns":300000,"cache_parse_ns":500000,"cache_entry_bytes":1700,"cache_verify_failures":0,"trace_gen_ns":800000,"sim_ns":5000000,"stats":{"sweep":{"cells_owned":4}}}
{"event":"evict","t_ns":5200000,"seq":14,"shard":0,"entry":"00aa.json","bytes":123}
{"event":"cache_trim","t_ns":5300000,"seq":15,"shard":0,"max_bytes":4096,"scanned_entries":5,"scanned_bytes":4219,"evicted_entries":1,"evicted_bytes":123}
)";

/** The first 9 lines of kSyntheticJournal — a sweep still in flight
 *  (two cells running, no sweep_end), for the status golden. */
std::string
syntheticPartial()
{
    const std::string full = kSyntheticJournal;
    std::size_t pos = 0;
    for (int line = 0; line < 9; ++line)
        pos = full.find('\n', pos) + 1;
    return full.substr(0, pos);
}

TEST(SweepEventJournal, LiveJournalIsWellFormed)
{
    TempDir dir;
    const std::string path = dir.path + "/events.jsonl";
    sim::SweepEventJournal journal;
    ASSERT_TRUE(journal.open(path));
    sweep(4, &journal);
    journal.close();

    diff::SweepJournal parsed;
    std::string error;
    ASSERT_TRUE(diff::readJournal(path, parsed, &error)) << error;
    ASSERT_FALSE(parsed.events.empty());

    // Envelope ordering: seq strictly increasing, t_ns non-decreasing
    // (both stamped under the writer's mutex).
    const diff::SweepEvent &first = parsed.events.front();
    EXPECT_EQ(first.type, "sweep_start");
    EXPECT_EQ(first.text("schema"), "csp-events-v1");
    EXPECT_EQ(first.u64("shard_count"), 1u);
    EXPECT_EQ(first.text("workloads"), "array,list,bst");
    std::uint64_t prev_seq = 0, prev_t = 0;
    bool first_event = true;
    for (const diff::SweepEvent &event : parsed.events) {
        if (!first_event) {
            EXPECT_GT(event.seq, prev_seq);
            EXPECT_GE(event.t_ns, prev_t);
        }
        first_event = false;
        prev_seq = event.seq;
        prev_t = event.t_ns;
    }

    // Every cell_start has exactly one cell_end, and the roll-up
    // agrees with the events it summarizes.
    std::map<std::uint64_t, int> open;
    std::uint64_t ends = 0, cached = 0;
    for (const diff::SweepEvent &event : parsed.events) {
        if (event.type == "cell_start") {
            EXPECT_EQ(open.count(event.u64("cell")), 0u);
            open[event.u64("cell")] = 1;
        } else if (event.type == "cell_end") {
            EXPECT_EQ(open.count(event.u64("cell")), 1u);
            open.erase(event.u64("cell"));
            ++ends;
            const std::string source = event.text("source");
            EXPECT_TRUE(source == "cached" || source == "simulated");
            if (source == "cached")
                ++cached;
            EXPECT_GT(event.u64("insts"), 0u);
        }
    }
    EXPECT_TRUE(open.empty());
    EXPECT_EQ(ends, kWorkloads.size() * kPrefetchers.size());
    const diff::SweepEvent *end = parsed.last("sweep_end");
    ASSERT_NE(end, nullptr);
    EXPECT_EQ(end, &parsed.events.back());
    EXPECT_EQ(end->u64("cells_owned"), ends);
    EXPECT_EQ(end->u64("cells_cached"), cached);
    EXPECT_EQ(end->u64("cells_simulated"), ends - cached);
    // The roll-up embeds a stats-registry report.
    EXPECT_NE(end->u64("stats.sweep.cells_owned"), 0u);
}

TEST(SweepEventJournal, JournalIsSideBand)
{
    // The determinism contract extended to observability: the cell
    // CSV is bit-identical with events on or off, at any job count.
    const std::string plain = cellCsv(sweep(1));
    EXPECT_EQ(plain, cellCsv(sweep(4)));
    for (const unsigned jobs : {1u, 4u}) {
        TempDir dir;
        sim::SweepEventJournal journal;
        ASSERT_TRUE(journal.open(dir.path + "/events.jsonl"));
        EXPECT_EQ(plain, cellCsv(sweep(jobs, &journal)))
            << "jobs=" << jobs;
        journal.close();
    }
}

TEST(SweepReport, GoldenSummary)
{
    diff::SweepJournal journal;
    std::string error;
    ASSERT_TRUE(diff::parseJournal(kSyntheticJournal, journal, &error))
        << error;
    std::ostringstream out;
    ASSERT_TRUE(diff::renderSweepSummary(journal, out, &error))
        << error;
    EXPECT_EQ(out.str(),
              "sweep observatory summary\n"
              "=========================\n"
              "journal : 1 shard journal(s), 16 events, span 5.300 ms\n"
              "sweep   : workloads=alpha,beta prefetchers=none,context\n"
              "          scale=1000 seed=7 placement=rand "
              "config=cafe01234567 shards=1\n"
              "cells   : 4 completed | 2 cached (50.0% hit rate) | 2 "
              "simulated | 0 verify failure(s)\n"
              "traces  : 1 cache hit(s), 1 generated (0.800 ms), 0 "
              "loaded\n"
              "\n"
              "cell duration (ms)     count        p50        p90"
              "        p99        max\n"
              "  all                       4      0.500      3.000"
              "      3.000      3.000\n"
              "  cached                    2      0.400      0.500"
              "      0.500      0.500\n"
              "  simulated                 2      2.000      3.000"
              "      3.000      3.000\n"
              "\n"
              "warm-path attribution (cached cells, 0.900 ms wall):\n"
              "  read  0.300 ms (33.3%) | parse 0.500 ms (55.6%) | "
              "other 0.100 ms\n"
              "  entries 1700 bytes total, mean 850 bytes/entry\n"
              "\n"
              "per-workload:\n"
              "  workload            cells  cached   total-ms"
              "    mean-ms     max-ms\n"
              "  alpha                   2       1      2.500"
              "      1.250      2.000\n"
              "  beta                    2       1      3.400"
              "      1.700      3.000\n"
              "\n"
              "stragglers (longest cells):\n"
              "  #  workload            prefetcher  source     "
              "shard  worker  duration-ms\n"
              "  1  beta                context     simulated      0"
              "       1        3.000\n"
              "  2  alpha               none        simulated      0"
              "       0        2.000\n"
              "  3  alpha               context     cached         0"
              "       1        0.500\n"
              "  4  beta                none        cached         0"
              "       0        0.400\n"
              "\n"
              "workers:\n"
              "  shard  worker  cells    busy-ms   share\n"
              "      0       0      2      2.400   40.7%\n"
              "      0       1      2      3.500   59.3%\n"
              "\n"
              "cache trim: 1 entry evicted, 123 bytes reclaimed\n");
}

/** A journal with no cached cells (or cached cells that carry no
 *  read/parse timings) must skip the warm-path attribution section
 *  entirely rather than render an all-zero table. */
TEST(SweepReport, SummarySkipsEmptyWarmPath)
{
    const auto replaceAll = [](std::string text,
                               const std::string &from,
                               const std::string &to) {
        for (std::size_t pos = 0;
             (pos = text.find(from, pos)) != std::string::npos;
             pos += to.size()) {
            text.replace(pos, from.size(), to);
        }
        return text;
    };
    const auto summaryOf = [](const std::string &text) {
        diff::SweepJournal journal;
        std::string error;
        EXPECT_TRUE(diff::parseJournal(text, journal, &error)) << error;
        std::ostringstream out;
        EXPECT_TRUE(diff::renderSweepSummary(journal, out, &error))
            << error;
        return out.str();
    };

    // Zero cached cells: every cell re-labelled as simulated.
    const std::string cold = summaryOf(replaceAll(
        kSyntheticJournal, "\"source\":\"cached\"",
        "\"source\":\"simulated\""));
    EXPECT_EQ(cold.find("warm-path attribution"), std::string::npos);
    EXPECT_NE(cold.find("0 cached (0.0% hit rate)"), std::string::npos);

    // Cached cells without attribution fields (an older shard's
    // journal): the section is equally meaningless, so it is skipped.
    std::string no_attr = kSyntheticJournal;
    no_attr = replaceAll(no_attr, "\"read_ns\":200000", "\"read_ns\":0");
    no_attr = replaceAll(no_attr, "\"read_ns\":100000", "\"read_ns\":0");
    no_attr = replaceAll(no_attr, "\"parse_ns\":250000",
                         "\"parse_ns\":0");
    const std::string stale = summaryOf(no_attr);
    EXPECT_EQ(stale.find("warm-path attribution"), std::string::npos);
    EXPECT_NE(stale.find("2 cached (50.0% hit rate)"),
              std::string::npos);
}

TEST(SweepReport, GoldenStatus)
{
    diff::SweepJournal journal;
    std::string error;
    ASSERT_TRUE(
        diff::parseJournal(syntheticPartial(), journal, &error))
        << error;
    std::ostringstream out;
    ASSERT_TRUE(diff::renderSweepStatus(journal, out, &error))
        << error;
    EXPECT_EQ(out.str(),
              "sweep status\n"
              "  sweep    : workloads=alpha,beta "
              "prefetchers=none,context scale=1000 seed=7 "
              "placement=rand\n"
              "  journal  : shard 0/1, 9 events, elapsed 2.500 ms\n"
              "  progress : 1/4 cells (1 cached), 25.0% of 0.4M "
              "insts, 40.0M insts/s\n"
              "  eta      : ~0.0 s\n"
              "  cache    : 100.0% hit rate so far\n"
              "  workers  :\n"
              "    shard 0 worker 0: alpha/none (running 1.100 ms)\n"
              "    shard 0 worker 1: beta/context (running 0.500 "
              "ms)\n");
}

TEST(SweepReport, RejectsMalformedJournals)
{
    diff::SweepJournal journal;
    std::string error;
    EXPECT_FALSE(diff::parseJournal("{\"event\":\"x\"}\nnot json\n",
                                    journal, &error));
    EXPECT_NE(error.find("line"), std::string::npos);
    // Envelope fields are mandatory.
    EXPECT_FALSE(
        diff::parseJournal("{\"event\":\"x\",\"t_ns\":1,\"seq\":0}\n",
                           journal, &error));
    // No sweep_start: parses, but has no identity.
    ASSERT_TRUE(diff::parseJournal(
        "{\"event\":\"heartbeat\",\"t_ns\":1,\"seq\":0,\"shard\":0}\n",
        journal, &error));
    diff::JournalIdentity id;
    EXPECT_FALSE(diff::journalIdentity(journal, id, &error));
}

/** Two-shard merge: events interleave by absolute time (per-journal
 *  unix_ns anchor + t_ns), lines re-emitted verbatim. */
TEST(SweepReport, MergeOrdersJournalsByAbsoluteTime)
{
    TempDir dir;
    const auto shardJournal = [&](unsigned shard,
                                  std::uint64_t unix_ns,
                                  std::uint64_t heartbeat_t) {
        std::ostringstream text;
        text << "{\"event\":\"sweep_start\",\"t_ns\":0,\"seq\":0,"
                "\"shard\":"
             << shard
             << ",\"schema\":\"csp-events-v1\",\"unix_ns\":" << unix_ns
             << ",\"config_digest\":\"cafe\",\"seed\":1,"
                "\"scale\":100,\"placement\":\"rand\","
                "\"workloads\":\"a\",\"prefetchers\":\"p\","
                "\"shard_count\":2,\"jobs\":1,\"git_sha\":\"g\"}\n"
             << "{\"event\":\"heartbeat\",\"t_ns\":" << heartbeat_t
             << ",\"seq\":1,\"shard\":" << shard
             << ",\"cells_done\":0,\"cells_expected\":1,"
                "\"cells_cached\":0,\"insts_done\":0,"
                "\"insts_total\":1,\"insts_per_sec\":0}\n";
        const std::string path =
            dir.path + "/s" + std::to_string(shard) + ".jsonl";
        std::ofstream(path) << text.str();
        return path;
    };
    // shard 0 opens at t=1000, heartbeat at abs 1900; shard 1 opens
    // at abs 1500, heartbeat at abs 1600 — merged order interleaves.
    const std::string s0 = shardJournal(0, 1000, 900);
    const std::string s1 = shardJournal(1, 1500, 100);
    std::ostringstream merged;
    std::string error;
    ASSERT_TRUE(
        diff::mergeJournals({s0, s1}, nullptr, merged, &error))
        << error;
    diff::SweepJournal journal;
    ASSERT_TRUE(diff::parseJournal(merged.str(), journal, &error))
        << error;
    ASSERT_EQ(journal.events.size(), 4u);
    EXPECT_EQ(journal.events[0].type, "sweep_start");
    EXPECT_EQ(journal.events[0].shard, 0u);
    EXPECT_EQ(journal.events[1].type, "sweep_start");
    EXPECT_EQ(journal.events[1].shard, 1u);
    EXPECT_EQ(journal.events[2].type, "heartbeat");
    EXPECT_EQ(journal.events[2].shard, 1u);
    EXPECT_EQ(journal.events[3].type, "heartbeat");
    EXPECT_EQ(journal.events[3].shard, 0u);

    // Duplicate shard index: refused.
    std::ostringstream sink;
    EXPECT_FALSE(diff::mergeJournals({s0, s0}, nullptr, sink, &error));
    EXPECT_NE(error.find("twice"), std::string::npos);

    // Identity mismatch vs the artefacts: refused.
    diff::JournalIdentity expect;
    expect.config_digest = "cafe";
    expect.seed = 2; // journals say seed=1
    expect.scale = 100;
    expect.placement = "rand";
    expect.workloads = "a";
    expect.prefetchers = "p";
    expect.shard_count = 2;
    EXPECT_FALSE(
        diff::mergeJournals({s0, s1}, &expect, sink, &error));
    EXPECT_NE(error.find("seed"), std::string::npos);

    // Incomplete shard set: refused.
    EXPECT_FALSE(diff::mergeJournals({s0}, nullptr, sink, &error));
    EXPECT_NE(error.find("expected 2"), std::string::npos);
}

TEST(CacheTrim, EvictsOldestMtimeFirstUntilUnderBudget)
{
    TempDir dir;
    const auto entry = [&](const std::string &name, std::size_t bytes,
                           int age_minutes) {
        const std::string path = dir.path + "/" + name;
        std::ofstream(path) << std::string(bytes, 'x');
        std::filesystem::last_write_time(
            path, std::filesystem::file_time_type::clock::now() -
                      std::chrono::minutes(age_minutes));
        return path;
    };
    const std::string a = entry("aa.json", 100, 30); // oldest
    const std::string b = entry("bb.json", 200, 20);
    const std::string c = entry("cc.json", 300, 10); // newest
    entry("ignored.txt", 999, 40); // not a cache entry

    // Unbounded: no-op.
    const sim::CacheTrimResult untrimmed =
        sim::trimResultCache(dir.path, 0);
    EXPECT_EQ(untrimmed.evicted_entries, 0u);
    EXPECT_TRUE(std::filesystem::exists(a));

    // 350-byte budget over 600 bytes of entries: evict a then b
    // (oldest first); c alone fits.
    const sim::CacheTrimResult trimmed =
        sim::trimResultCache(dir.path, 350);
    EXPECT_EQ(trimmed.scanned_entries, 3u);
    EXPECT_EQ(trimmed.scanned_bytes, 600u);
    EXPECT_EQ(trimmed.evicted_entries, 2u);
    EXPECT_EQ(trimmed.evicted_bytes, 300u);
    ASSERT_EQ(trimmed.evicted.size(), 2u);
    EXPECT_EQ(trimmed.evicted[0].first, "aa.json");
    EXPECT_EQ(trimmed.evicted[1].first, "bb.json");
    EXPECT_FALSE(std::filesystem::exists(a));
    EXPECT_FALSE(std::filesystem::exists(b));
    EXPECT_TRUE(std::filesystem::exists(c));
    EXPECT_TRUE(std::filesystem::exists(dir.path + "/ignored.txt"));
}

TEST(CacheTrim, ParseByteSizeAcceptsSuffixes)
{
    std::uint64_t bytes = 0;
    EXPECT_TRUE(sim::parseByteSize("64", bytes));
    EXPECT_EQ(bytes, 64u);
    EXPECT_TRUE(sim::parseByteSize("64K", bytes));
    EXPECT_EQ(bytes, 64u * 1024);
    EXPECT_TRUE(sim::parseByteSize("2m", bytes));
    EXPECT_EQ(bytes, 2u * 1024 * 1024);
    EXPECT_TRUE(sim::parseByteSize("1G", bytes));
    EXPECT_EQ(bytes, 1024u * 1024 * 1024);
    EXPECT_TRUE(sim::parseByteSize("1T", bytes));
    EXPECT_EQ(bytes, 1099511627776u);
    EXPECT_FALSE(sim::parseByteSize("", bytes));
    EXPECT_FALSE(sim::parseByteSize("K", bytes));
    EXPECT_FALSE(sim::parseByteSize("64X", bytes));
    EXPECT_FALSE(sim::parseByteSize("-5", bytes));
}

TEST(CacheTrim, MaxBytesFromEnvironment)
{
    setenv("CSP_CACHE_MAX_BYTES", "1M", 1);
    EXPECT_EQ(sim::cacheMaxBytesFromEnv(), 1048576u);
    setenv("CSP_CACHE_MAX_BYTES", "garbage", 1);
    EXPECT_EQ(sim::cacheMaxBytesFromEnv(), 0u);
    unsetenv("CSP_CACHE_MAX_BYTES");
    EXPECT_EQ(sim::cacheMaxBytesFromEnv(), 0u);
}

/** Warm sweeps must attribute where their time went (the warm-path
 *  JSON-parse cost the journal exists to quantify), and the artefact
 *  carries the attribution through a write/read round trip. */
TEST(WarmSweep, AttributesReadAndParseCost)
{
    TempDir dir;
    SystemConfig config;
    workloads::WorkloadParams params;
    params.scale = 12000;
    sim::SweepOptions options;
    options.verbose = false;
    options.jobs = 2;
    options.use_result_cache = true;
    options.use_trace_cache = true;
    options.result_cache_dir = dir.path + "/rc";
    options.trace_cache_dir = dir.path + "/tc";
    const sim::SweepResult cold = sim::runSweep(
        kWorkloads, kPrefetchers, params, config, options);
    EXPECT_EQ(cold.cells_cached, 0u);
    EXPECT_EQ(cold.cache_entry_bytes, 0u);
    const sim::SweepResult warm = sim::runSweep(
        kWorkloads, kPrefetchers, params, config, options);
    EXPECT_EQ(warm.cells_simulated, 0u);
    EXPECT_EQ(warm.cells_cached,
              kWorkloads.size() * kPrefetchers.size());
    EXPECT_GT(warm.cache_entry_bytes, 0u);
    EXPECT_GT(warm.cache_read_ns, 0u);
    EXPECT_GT(warm.cache_parse_ns, 0u);
    EXPECT_EQ(warm.cache_verify_failures, 0u);
    EXPECT_EQ(cellCsv(cold), cellCsv(warm));

    const std::string path = dir.path + "/sweep.json";
    std::ostringstream doc;
    sim::writeSweepJson(doc, warm);
    std::ofstream(path) << doc.str();
    sim::SweepResult reread;
    std::string error;
    ASSERT_TRUE(sim::readSweepJson(path, reread, &error)) << error;
    EXPECT_EQ(reread.cache_read_ns, warm.cache_read_ns);
    EXPECT_EQ(reread.cache_parse_ns, warm.cache_parse_ns);
    EXPECT_EQ(reread.cache_entry_bytes, warm.cache_entry_bytes);
    EXPECT_EQ(reread.cache_verify_failures,
              warm.cache_verify_failures);
}

} // namespace
} // namespace csp
