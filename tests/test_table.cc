/** @file Unit tests for the table renderer. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/table.h"

namespace csp::sim {
namespace {

TEST(Table, AlignsColumns)
{
    Table table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"long-name", "22"});
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("long-name"), std::string::npos);
    // Every data line has the same length (aligned columns).
    std::istringstream lines(text);
    std::string header;
    std::getline(lines, header);
    std::string rule;
    std::getline(lines, rule);
    std::string row;
    while (std::getline(lines, row))
        EXPECT_LE(row.size(), header.size() + 2);
}

TEST(Table, CsvOutput)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream out;
    table.printCsv(out);
    EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(1.23456, 0), "1");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, RowCount)
{
    Table table({"x"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rows(), 2u);
}

} // namespace
} // namespace csp::sim
