/** @file Unit tests for trace records, buffer and recorder. */

#include <gtest/gtest.h>

#include "trace/trace.h"

namespace csp::trace {
namespace {

TEST(TraceBuffer, CountsInstructionsAndAccesses)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.load(0, 0x2000);
    rec.store(1, 0x3000);
    rec.branch(2, true);
    rec.compute(3, 10);
    EXPECT_EQ(buffer.instructions(), 13u);
    EXPECT_EQ(buffer.memAccesses(), 2u);
}

TEST(TraceBuffer, ComputeBurstsFold)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.compute(0, 3);
    rec.compute(0, 4);
    EXPECT_EQ(buffer.size(), 1u);
    EXPECT_EQ(buffer.decode()[0].repeat, 7u);
    EXPECT_EQ(buffer.instructions(), 7u);
}

TEST(TraceBuffer, ComputeBurstsFromDifferentSitesDoNotFold)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.compute(0, 3);
    rec.compute(1, 4);
    EXPECT_EQ(buffer.size(), 2u);
}

TEST(TraceBuffer, ComputeAfterLoadDoesNotFold)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.compute(0, 2);
    rec.load(1, 0x2000);
    rec.compute(0, 2);
    EXPECT_EQ(buffer.size(), 3u);
}

TEST(TraceBuffer, ZeroComputeIsDropped)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.compute(0, 0);
    EXPECT_TRUE(buffer.empty());
}

TEST(Recorder, SyntheticPcsAreDistinctPerSite)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x400000);
    EXPECT_NE(rec.pc(0), rec.pc(1));
    EXPECT_EQ(rec.pc(0), 0x400000u);
}

TEST(Recorder, LoadCarriesHintAndDep)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    const hints::Hint hint{5, 0, hints::RefForm::Arrow};
    rec.load(0, 0xabc0, hint, /*loaded_value=*/0x1234,
             /*dep_on_prev_load=*/true, /*reg_value=*/0x77);
    const TraceRecord r = buffer.decode()[0];
    EXPECT_EQ(r.kind, InstKind::Load);
    EXPECT_EQ(r.vaddr, 0xabc0u);
    EXPECT_EQ(r.hint, hint);
    EXPECT_EQ(r.loaded_value, 0x1234u);
    EXPECT_TRUE(r.dep_on_prev_load);
    EXPECT_EQ(r.reg_value, 0x77u);
}

TEST(Recorder, BranchRecordsOutcome)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.branch(0, true);
    rec.branch(0, false);
    const std::vector<TraceRecord> records = buffer.decode();
    EXPECT_TRUE(records[0].taken);
    EXPECT_FALSE(records[1].taken);
}

TEST(TraceBuffer, CursorMatchesDecodeAndResets)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    const hints::Hint hint{9, hints::kNoLinkOffset,
                           hints::RefForm::Index};
    rec.load(0, 0xff00, hint, 0xdeadbeef, true, 0x55);
    rec.store(1, 0x1234);
    rec.branch(2, false);
    rec.compute(3, 5);

    const std::vector<TraceRecord> records = buffer.decode();
    ASSERT_EQ(records.size(), buffer.size());
    for (int pass = 0; pass < 2; ++pass) {
        TraceCursor cursor = buffer.cursor();
        std::size_t i = 0;
        while (const TraceRecord *r = cursor.next()) {
            ASSERT_LT(i, records.size());
            EXPECT_EQ(r->kind, records[i].kind) << i;
            EXPECT_EQ(r->pc, records[i].pc) << i;
            EXPECT_EQ(r->vaddr, records[i].vaddr) << i;
            EXPECT_EQ(r->hint, records[i].hint) << i;
            EXPECT_EQ(r->repeat, records[i].repeat) << i;
            ++i;
        }
        EXPECT_EQ(i, records.size());
        EXPECT_TRUE(cursor.done());
        cursor.reset();
        EXPECT_EQ(cursor.done(), buffer.empty());
    }
}

TEST(TraceBuffer, SentinelLinkOffsetSurvivesRoundTrip)
{
    // Hint::pack() would truncate kNoLinkOffset to 13 bits; the
    // dictionary encoding must not.
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    const hints::Hint hint{7, hints::kNoLinkOffset,
                           hints::RefForm::Index};
    rec.load(0, 0x4000, hint);
    EXPECT_EQ(buffer.decode()[0].hint.link_offset,
              hints::kNoLinkOffset);
}

TEST(TraceBuffer, PackedEncodingIsCompact)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    const hints::Hint hint{1, 8, hints::RefForm::Arrow};
    for (std::uint32_t i = 0; i < 1000; ++i) {
        rec.load(0, 0x100000 + i * 64, hint, /*loaded_value=*/i + 1);
        rec.branch(1, (i & 1) != 0);
        rec.compute(2, 3);
    }
    // A hinted load with a loaded value costs ~13 bytes, a branch 2 and
    // a compute burst 3 — far under half the 56-byte AoS record the
    // acceptance bar is measured against.
    EXPECT_LT(buffer.bytesPerRecord(), 28.0);
    EXPECT_EQ(buffer.pcDictSize(), 3u);
}

TEST(TraceBuffer, PushTapSeesUnfoldedRecords)
{
    TraceBuffer buffer;
    std::vector<TraceRecord> seen;
    buffer.setPushTap(
        [](void *user, const TraceRecord &rec) {
            static_cast<std::vector<TraceRecord> *>(user)->push_back(
                rec);
        },
        &seen);
    Recorder rec(buffer, 0x1000);
    rec.compute(0, 3);
    rec.compute(0, 4);
    EXPECT_EQ(buffer.size(), 1u);
    ASSERT_EQ(seen.size(), 2u); // pre-fold
    EXPECT_EQ(seen[0].repeat, 3u);
    EXPECT_EQ(seen[1].repeat, 4u);
    EXPECT_EQ(buffer.decode()[0].repeat, 7u);
}

TEST(TraceRecord, IsMemClassification)
{
    TraceRecord rec;
    rec.kind = InstKind::Load;
    EXPECT_TRUE(rec.isMem());
    rec.kind = InstKind::Store;
    EXPECT_TRUE(rec.isMem());
    rec.kind = InstKind::Branch;
    EXPECT_FALSE(rec.isMem());
    rec.kind = InstKind::Compute;
    EXPECT_FALSE(rec.isMem());
}

} // namespace
} // namespace csp::trace
