/** @file Unit tests for trace records, buffer and recorder. */

#include <gtest/gtest.h>

#include "trace/trace.h"

namespace csp::trace {
namespace {

TEST(TraceBuffer, CountsInstructionsAndAccesses)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.load(0, 0x2000);
    rec.store(1, 0x3000);
    rec.branch(2, true);
    rec.compute(3, 10);
    EXPECT_EQ(buffer.instructions(), 13u);
    EXPECT_EQ(buffer.memAccesses(), 2u);
}

TEST(TraceBuffer, ComputeBurstsFold)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.compute(0, 3);
    rec.compute(0, 4);
    EXPECT_EQ(buffer.size(), 1u);
    EXPECT_EQ(buffer[0].repeat, 7u);
    EXPECT_EQ(buffer.instructions(), 7u);
}

TEST(TraceBuffer, ComputeBurstsFromDifferentSitesDoNotFold)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.compute(0, 3);
    rec.compute(1, 4);
    EXPECT_EQ(buffer.size(), 2u);
}

TEST(TraceBuffer, ComputeAfterLoadDoesNotFold)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.compute(0, 2);
    rec.load(1, 0x2000);
    rec.compute(0, 2);
    EXPECT_EQ(buffer.size(), 3u);
}

TEST(TraceBuffer, ZeroComputeIsDropped)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.compute(0, 0);
    EXPECT_TRUE(buffer.empty());
}

TEST(Recorder, SyntheticPcsAreDistinctPerSite)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x400000);
    EXPECT_NE(rec.pc(0), rec.pc(1));
    EXPECT_EQ(rec.pc(0), 0x400000u);
}

TEST(Recorder, LoadCarriesHintAndDep)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    const hints::Hint hint{5, 0, hints::RefForm::Arrow};
    rec.load(0, 0xabc0, hint, /*loaded_value=*/0x1234,
             /*dep_on_prev_load=*/true, /*reg_value=*/0x77);
    const TraceRecord &r = buffer[0];
    EXPECT_EQ(r.kind, InstKind::Load);
    EXPECT_EQ(r.vaddr, 0xabc0u);
    EXPECT_EQ(r.hint, hint);
    EXPECT_EQ(r.loaded_value, 0x1234u);
    EXPECT_TRUE(r.dep_on_prev_load);
    EXPECT_EQ(r.reg_value, 0x77u);
}

TEST(Recorder, BranchRecordsOutcome)
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x1000);
    rec.branch(0, true);
    rec.branch(0, false);
    EXPECT_TRUE(buffer[0].taken);
    EXPECT_FALSE(buffer[1].taken);
}

TEST(TraceRecord, IsMemClassification)
{
    TraceRecord rec;
    rec.kind = InstKind::Load;
    EXPECT_TRUE(rec.isMem());
    rec.kind = InstKind::Store;
    EXPECT_TRUE(rec.isMem());
    rec.kind = InstKind::Branch;
    EXPECT_FALSE(rec.isMem());
    rec.kind = InstKind::Compute;
    EXPECT_FALSE(rec.isMem());
}

} // namespace
} // namespace csp::trace
