/** @file Unit tests for binary trace serialization. */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/trace_io.h"
#include "workloads/registry.h"

namespace csp::trace {
namespace {

TraceBuffer
sampleTrace()
{
    TraceBuffer buffer;
    Recorder rec(buffer, 0x400000);
    const hints::Hint hint{3, 8, hints::RefForm::Arrow};
    rec.load(0, 0x10000, hint, 0xfeed, true, 0x77);
    rec.store(1, 0x20000, hint);
    rec.branch(2, true);
    rec.compute(3, 42);
    rec.load(0, 0x10040);
    return buffer;
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const TraceBuffer original = sampleTrace();
    std::stringstream stream;
    ASSERT_TRUE(saveTrace(original, stream));
    TraceBuffer loaded;
    ASSERT_EQ(loadTrace(stream, loaded), TraceIoStatus::Ok);
    ASSERT_EQ(loaded.size(), original.size());
    EXPECT_EQ(loaded.instructions(), original.instructions());
    EXPECT_EQ(loaded.memAccesses(), original.memAccesses());
    const std::vector<TraceRecord> original_recs = original.decode();
    const std::vector<TraceRecord> loaded_recs = loaded.decode();
    for (std::size_t i = 0; i < original_recs.size(); ++i) {
        const TraceRecord &a = original_recs[i];
        const TraceRecord &b = loaded_recs[i];
        EXPECT_EQ(a.kind, b.kind) << i;
        EXPECT_EQ(a.pc, b.pc) << i;
        EXPECT_EQ(a.vaddr, b.vaddr) << i;
        EXPECT_EQ(a.repeat, b.repeat) << i;
        EXPECT_EQ(a.hint, b.hint) << i;
        EXPECT_EQ(a.loaded_value, b.loaded_value) << i;
        EXPECT_EQ(a.reg_value, b.reg_value) << i;
        EXPECT_EQ(a.dep_on_prev_load, b.dep_on_prev_load) << i;
        EXPECT_EQ(a.taken, b.taken) << i;
    }
}

TEST(TraceIo, RoundTripOfGeneratedWorkload)
{
    workloads::WorkloadParams params;
    params.scale = 5000;
    const TraceBuffer original = workloads::Registry::builtin()
                                     .create("list")
                                     ->generate(params);
    std::stringstream stream;
    ASSERT_TRUE(saveTrace(original, stream));
    TraceBuffer loaded;
    ASSERT_EQ(loadTrace(stream, loaded), TraceIoStatus::Ok);
    ASSERT_EQ(loaded.size(), original.size());
    const std::vector<TraceRecord> original_recs = original.decode();
    const std::vector<TraceRecord> loaded_recs = loaded.decode();
    for (std::size_t i = 0; i < original_recs.size(); i += 37)
        EXPECT_EQ(loaded_recs[i].vaddr, original_recs[i].vaddr);
}

TEST(TraceIo, BadMagicRejected)
{
    std::stringstream stream;
    stream << "NOTATRACEFILE_PADDING_PADDING";
    TraceBuffer loaded;
    EXPECT_EQ(loadTrace(stream, loaded), TraceIoStatus::BadMagic);
}

TEST(TraceIo, TruncatedHeaderRejected)
{
    std::stringstream stream;
    stream << "CSP";
    TraceBuffer loaded;
    EXPECT_EQ(loadTrace(stream, loaded), TraceIoStatus::Truncated);
}

TEST(TraceIo, TruncatedBodyRejected)
{
    const TraceBuffer original = sampleTrace();
    std::stringstream stream;
    ASSERT_TRUE(saveTrace(original, stream));
    std::string bytes = stream.str();
    bytes.resize(bytes.size() - 10);
    std::stringstream cut(bytes);
    TraceBuffer loaded;
    EXPECT_EQ(loadTrace(cut, loaded), TraceIoStatus::Truncated);
}

TEST(TraceIo, MissingFileReported)
{
    TraceBuffer loaded;
    EXPECT_EQ(loadTraceFile("/nonexistent/path/x.trace", loaded),
              TraceIoStatus::CannotOpen);
}

TEST(TraceIo, FileRoundTrip)
{
    const TraceBuffer original = sampleTrace();
    const std::string path = "/tmp/csp_test_trace.bin";
    ASSERT_TRUE(saveTraceFile(original, path));
    TraceBuffer loaded;
    EXPECT_EQ(loadTraceFile(path, loaded), TraceIoStatus::Ok);
    EXPECT_EQ(loaded.size(), original.size());
    std::remove(path.c_str());
}

TEST(TraceIo, StatusNamesDistinct)
{
    EXPECT_STRNE(traceIoStatusName(TraceIoStatus::Ok),
                 traceIoStatusName(TraceIoStatus::BadMagic));
    EXPECT_STRNE(traceIoStatusName(TraceIoStatus::Truncated),
                 traceIoStatusName(TraceIoStatus::CannotOpen));
}

} // namespace
} // namespace csp::trace
