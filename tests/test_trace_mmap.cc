/** @file Streaming mmap trace replay: MappedTrace decodes the packed
 *  file in place, bit-identical to the in-memory path, verifies the
 *  header digest, and keeps replay RSS near the release-window size
 *  instead of the payload size. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <unistd.h>

#include "sim/experiment.h"
#include "sim/result_cache.h"
#include "sim/simulator.h"
#include "trace/trace_io.h"
#include "workloads/registry.h"

namespace csp::trace {
namespace {

struct TempTraceFile
{
    std::string path;

    explicit TempTraceFile(const char *name)
        : path(std::string("/tmp/csp_mmap_") + name + "_" +
               std::to_string(getpid()) + ".csptrace")
    {}

    ~TempTraceFile() { std::remove(path.c_str()); }
};

TraceBuffer
generate(const char *workload, std::uint64_t scale)
{
    workloads::WorkloadParams params;
    params.scale = scale;
    return workloads::Registry::builtin()
        .create(workload)
        ->generate(params);
}

/** Resident set size from /proc/self/statm, in bytes. */
std::size_t
residentBytes()
{
    std::ifstream statm("/proc/self/statm");
    std::size_t total_pages = 0, resident_pages = 0;
    statm >> total_pages >> resident_pages;
    return resident_pages *
           static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

TEST(TraceMmap, DecodesIdenticallyToTheInMemoryCursor)
{
    TempTraceFile file("decode");
    const TraceBuffer buffer = generate("list", 30000);
    ASSERT_TRUE(saveTraceFile(buffer, file.path));

    MappedTrace mapped;
    ASSERT_EQ(mapped.open(file.path), TraceIoStatus::Ok);
    EXPECT_EQ(mapped.size(), buffer.size());
    EXPECT_EQ(mapped.instructions(), buffer.instructions());
    EXPECT_EQ(mapped.memAccesses(), buffer.memAccesses());
    EXPECT_EQ(mapped.contentDigest(), buffer.contentDigest());

    // A deliberately tiny window forces many release/advance steps
    // through the differential decode.
    TraceCursor reference(buffer);
    StreamingTraceSource streamed(mapped, /*window_bytes=*/4096);
    std::size_t records = 0;
    while (true) {
        const TraceRecord *a = reference.next();
        const TraceRecord *b = streamed.next();
        ASSERT_EQ(a == nullptr, b == nullptr) << "record " << records;
        if (a == nullptr)
            break;
        EXPECT_EQ(a->kind, b->kind) << records;
        EXPECT_EQ(a->pc, b->pc) << records;
        EXPECT_EQ(a->vaddr, b->vaddr) << records;
        EXPECT_EQ(a->repeat, b->repeat) << records;
        EXPECT_EQ(a->hint, b->hint) << records;
        EXPECT_EQ(a->loaded_value, b->loaded_value) << records;
        EXPECT_EQ(a->reg_value, b->reg_value) << records;
        EXPECT_EQ(a->dep_on_prev_load, b->dep_on_prev_load) << records;
        EXPECT_EQ(a->taken, b->taken) << records;
        ++records;
    }
    EXPECT_EQ(records, buffer.size());
}

TEST(TraceMmap, ReplayMatchesInMemoryBitForBit)
{
    TempTraceFile file("replay");
    const TraceBuffer buffer = generate("list", 30000);
    ASSERT_TRUE(saveTraceFile(buffer, file.path));
    MappedTrace mapped;
    ASSERT_EQ(mapped.open(file.path), TraceIoStatus::Ok);

    const SystemConfig config;
    for (const char *pf_name : {"none", "stride", "context"}) {
        auto pf_a = sim::makePrefetcher(pf_name, config);
        sim::Simulator sim_a(config);
        const sim::RunStats a = sim_a.run(buffer, *pf_a);

        auto pf_b = sim::makePrefetcher(pf_name, config);
        sim::Simulator sim_b(config);
        const sim::RunStats b = sim_b.run(mapped, *pf_b);

        EXPECT_EQ(sim::runStatsDigest(a), sim::runStatsDigest(b))
            << pf_name;
    }
}

TEST(TraceMmap, OpenVerifiesTheContentDigest)
{
    TempTraceFile file("digest");
    const TraceBuffer buffer = generate("array", 20000);
    ASSERT_TRUE(saveTraceFile(buffer, file.path));

    TraceFileSummary summary;
    ASSERT_EQ(readTraceFileSummary(file.path, summary),
              TraceIoStatus::Ok);
    EXPECT_EQ(summary.records, buffer.size());
    EXPECT_EQ(summary.instructions, buffer.instructions());
    EXPECT_EQ(summary.mem_accesses, buffer.memAccesses());
    EXPECT_EQ(summary.content_digest, buffer.contentDigest());

    // Flip one payload byte near the end of the file.
    std::fstream bytes(file.path,
                       std::ios::in | std::ios::out |
                           std::ios::binary);
    bytes.seekg(0, std::ios::end);
    const std::streamoff size = bytes.tellg();
    ASSERT_GT(size, 16);
    bytes.seekg(size - 8);
    char byte = 0;
    bytes.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    bytes.seekp(size - 8);
    bytes.write(&byte, 1);
    bytes.close();

    MappedTrace tampered;
    EXPECT_EQ(tampered.open(file.path), TraceIoStatus::BadDigest);
    EXPECT_FALSE(tampered.mapped());
    // Skipping verification maps it anyway (the caller's informed
    // choice — runSweep always verifies before trusting a file).
    EXPECT_EQ(tampered.open(file.path, /*verify_digest=*/false),
              TraceIoStatus::Ok);
    EXPECT_TRUE(tampered.mapped());
}

TEST(TraceMmap, StreamingReplayKeepsRssNearTheWindowSize)
{
    TempTraceFile file("rss");
    std::size_t payload_bytes = 0;
    {
        const TraceBuffer buffer = generate("array", 2000000);
        payload_bytes = buffer.packedBytes().size();
        ASSERT_TRUE(saveTraceFile(buffer, file.path));
        // The buffer dies here: the streaming path must never
        // materialise anything comparable again.
    }
    // Big enough that a full materialisation would dominate RSS.
    ASSERT_GT(payload_bytes, std::size_t{3} *
                                 StreamingTraceSource::
                                     kDefaultWindowBytes);

    const std::size_t before = residentBytes();
    MappedTrace mapped;
    ASSERT_EQ(mapped.open(file.path), TraceIoStatus::Ok);
    const SystemConfig config;
    auto prefetcher = sim::makePrefetcher("none", config);
    sim::Simulator simulator(config);
    const sim::RunStats stats = simulator.run(mapped, *prefetcher);
    EXPECT_EQ(stats.instructions, mapped.instructions());
    const std::size_t after = residentBytes();

    // Windowed MADV_DONTNEED keeps the mapping's resident share near
    // one window; everything else (simulator structures, allocator
    // slack) is small. Well below the payload is the contract.
    const std::size_t delta = after > before ? after - before : 0;
    EXPECT_LT(delta, payload_bytes / 2)
        << "replay RSS grew by " << delta << " bytes against a "
        << payload_bytes << "-byte payload";
}

} // namespace
} // namespace csp::trace
