/** @file Golden tests for the packed trace representation.
 *
 *  A reference array-of-structs trace model (the representation the
 *  packed encoding replaced, fold semantics and all) is rebuilt here
 *  and fed every record exactly as the workload pushed it, via the
 *  TraceBuffer push tap. The packed buffer must decode to the exact
 *  same record sequence for every registered workload, and replaying
 *  the reference records must produce bit-identical RunStats to the
 *  packed-trace sweep at jobs=1 and jobs=4. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "workloads/registry.h"

namespace csp {
namespace {

using trace::InstKind;
using trace::TraceBuffer;
using trace::TraceRecord;

/** The retired AoS TraceBuffer semantics, verbatim. */
struct ReferenceAos
{
    std::vector<TraceRecord> records;
    std::uint64_t instructions = 0;
    std::uint64_t mem_accesses = 0;

    void
    push(const TraceRecord &rec)
    {
        if (rec.kind == InstKind::Compute && !records.empty()) {
            TraceRecord &back = records.back();
            if (back.kind == InstKind::Compute && back.pc == rec.pc) {
                back.repeat += rec.repeat;
                instructions += rec.repeat;
                return;
            }
        }
        records.push_back(rec);
        instructions +=
            rec.kind == InstKind::Compute ? rec.repeat : 1;
        if (rec.isMem())
            ++mem_accesses;
    }
};

void
referenceTap(void *user, const TraceRecord &rec)
{
    static_cast<ReferenceAos *>(user)->push(rec);
}

/** Generate @p name with the reference model riding the push tap. */
TraceBuffer
generateTapped(const std::string &name,
               const workloads::WorkloadParams &params,
               ReferenceAos &ref)
{
    TraceBuffer::setThreadPushTap(&referenceTap, &ref);
    TraceBuffer buffer =
        workloads::Registry::builtin().create(name)->generate(params);
    TraceBuffer::setThreadPushTap(nullptr, nullptr);
    return buffer;
}

void
expectSameRecord(const TraceRecord &a, const TraceRecord &b,
                 const std::string &what, std::size_t i)
{
    ASSERT_EQ(a.kind, b.kind) << what << " record " << i;
    ASSERT_EQ(a.pc, b.pc) << what << " record " << i;
    ASSERT_EQ(a.vaddr, b.vaddr) << what << " record " << i;
    ASSERT_EQ(a.repeat, b.repeat) << what << " record " << i;
    ASSERT_EQ(a.size, b.size) << what << " record " << i;
    ASSERT_EQ(a.dep_on_prev_load, b.dep_on_prev_load)
        << what << " record " << i;
    ASSERT_EQ(a.taken, b.taken) << what << " record " << i;
    ASSERT_EQ(a.hint, b.hint) << what << " record " << i;
    ASSERT_EQ(a.reg_value, b.reg_value) << what << " record " << i;
    ASSERT_EQ(a.loaded_value, b.loaded_value)
        << what << " record " << i;
}

class TraceRoundTripTest
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(TraceRoundTripTest, PackedDecodesToReferenceRecords)
{
    workloads::WorkloadParams params;
    params.scale = 20000;
    params.seed = 5;
    ReferenceAos ref;
    const TraceBuffer buffer = generateTapped(GetParam(), params, ref);

    EXPECT_EQ(buffer.size(), ref.records.size());
    EXPECT_EQ(buffer.instructions(), ref.instructions);
    EXPECT_EQ(buffer.memAccesses(), ref.mem_accesses);

    // Streaming cursor against the reference, field by field.
    trace::TraceCursor cursor = buffer.cursor();
    std::size_t i = 0;
    while (const TraceRecord *rec = cursor.next()) {
        ASSERT_LT(i, ref.records.size()) << GetParam();
        expectSameRecord(*rec, ref.records[i], GetParam(), i);
        ++i;
    }
    EXPECT_EQ(i, ref.records.size()) << GetParam();

    // decode() materialises the same sequence.
    const std::vector<TraceRecord> decoded = buffer.decode();
    ASSERT_EQ(decoded.size(), ref.records.size()) << GetParam();
    for (std::size_t j = 0; j < decoded.size(); ++j)
        expectSameRecord(decoded[j], ref.records[j], GetParam(), j);

    // The packed form must beat the 56-byte AoS record by >= 2x.
    EXPECT_LT(buffer.bytesPerRecord(),
              sizeof(TraceRecord) / 2.0)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TraceRoundTripTest,
    ::testing::ValuesIn(workloads::Registry::builtin().names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

void
expectIdenticalStats(const sim::RunStats &a, const sim::RunStats &b,
                     const std::string &what)
{
    EXPECT_EQ(a.instructions, b.instructions) << what;
    EXPECT_EQ(a.cycles, b.cycles) << what;
    EXPECT_EQ(a.demand_accesses, b.demand_accesses) << what;
    EXPECT_EQ(a.l1_misses, b.l1_misses) << what;
    EXPECT_EQ(a.l2_demand_misses, b.l2_demand_misses) << what;
    EXPECT_EQ(a.prefetch_never_hit, b.prefetch_never_hit) << what;
    for (std::size_t c = 0; c < a.classes.size(); ++c)
        EXPECT_EQ(a.classes[c], b.classes[c])
            << what << " class " << c;
    EXPECT_EQ(a.hierarchy.demand_accesses,
              b.hierarchy.demand_accesses)
        << what;
    EXPECT_EQ(a.hierarchy.l1_misses, b.hierarchy.l1_misses) << what;
    EXPECT_EQ(a.hierarchy.l2_demand_misses,
              b.hierarchy.l2_demand_misses)
        << what;
    EXPECT_EQ(a.hierarchy.prefetches_issued,
              b.hierarchy.prefetches_issued)
        << what;
    EXPECT_EQ(a.hierarchy.prefetches_duplicate,
              b.hierarchy.prefetches_duplicate)
        << what;
    EXPECT_EQ(a.hierarchy.prefetches_dropped,
              b.hierarchy.prefetches_dropped)
        << what;
    EXPECT_EQ(a.hierarchy.l1_writebacks, b.hierarchy.l1_writebacks)
        << what;
    EXPECT_EQ(a.hierarchy.l2_writebacks, b.hierarchy.l2_writebacks)
        << what;
}

/** Replaying the reference AoS records must match the packed-trace
 *  sweep bit for bit, serial and parallel. */
TEST(TraceGoldenStats, ReferenceReplayMatchesSweep)
{
    const std::vector<std::string> workload_names = {"array", "list",
                                                     "bst"};
    const std::vector<std::string> prefetchers = {"none", "stride",
                                                  "context"};
    workloads::WorkloadParams params;
    params.scale = 12000;
    SystemConfig config;

    // Expected grid: replay each workload's REFERENCE records.
    std::vector<sim::RunStats> expected;
    for (const std::string &wname : workload_names) {
        ReferenceAos ref;
        (void)generateTapped(wname, params, ref);
        for (const std::string &pname : prefetchers) {
            auto prefetcher = sim::makePrefetcher(pname, config);
            sim::Simulator simulator(config);
            expected.push_back(
                simulator.run(ref.records, *prefetcher));
        }
    }

    for (unsigned jobs : {1u, 4u}) {
        sim::SweepOptions options;
        options.verbose = false;
        options.jobs = jobs;
        const sim::SweepResult sweep = sim::runSweep(
            workload_names, prefetchers, params, config, options);
        ASSERT_EQ(sweep.cells.size(), expected.size());
        for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
            expectIdenticalStats(
                sweep.cells[i].stats, expected[i],
                sweep.cells[i].workload + "/" +
                    sweep.cells[i].prefetcher + " jobs=" +
                    std::to_string(jobs));
        }
    }
}

} // namespace
} // namespace csp
