/** @file Unit tests for core/types.h address arithmetic. */

#include <gtest/gtest.h>

#include "core/types.h"

namespace csp {
namespace {

TEST(Types, AlignDownToLine)
{
    EXPECT_EQ(alignDown(0x1000, 64), 0x1000u);
    EXPECT_EQ(alignDown(0x103f, 64), 0x1000u);
    EXPECT_EQ(alignDown(0x1040, 64), 0x1040u);
    EXPECT_EQ(alignDown(63, 64), 0u);
}

TEST(Types, AlignUpToLine)
{
    EXPECT_EQ(alignUp(0x1000, 64), 0x1000u);
    EXPECT_EQ(alignUp(0x1001, 64), 0x1040u);
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 4096), 4096u);
}

TEST(Types, AlignIsIdempotent)
{
    for (Addr a : {0x0ull, 0x37ull, 0x1234ull, 0xffffffull}) {
        EXPECT_EQ(alignDown(alignDown(a, 64), 64), alignDown(a, 64));
        EXPECT_EQ(alignUp(alignUp(a, 64), 64), alignUp(a, 64));
    }
}

TEST(Types, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo((1ull << 40) + 1));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2(2048), 11u);
    EXPECT_EQ(floorLog2(16384), 14u);
}

TEST(Types, BlockDeltaForward)
{
    EXPECT_EQ(blockDelta(0x1000, 0x1040, 64), 1);
    EXPECT_EQ(blockDelta(0x1000, 0x1000, 64), 0);
    EXPECT_EQ(blockDelta(0x1000, 0x2000, 64), 64);
}

TEST(Types, BlockDeltaBackward)
{
    EXPECT_EQ(blockDelta(0x1040, 0x1000, 64), -1);
    EXPECT_EQ(blockDelta(0x2000, 0x1000, 64), -64);
}

TEST(Types, BlockDeltaSubLineAccessesCollapse)
{
    // Two addresses in the same block have delta zero regardless of
    // byte offsets.
    EXPECT_EQ(blockDelta(0x1001, 0x103f, 64), 0);
}

TEST(Types, BlockDeltaRespectsGranularity)
{
    EXPECT_EQ(blockDelta(0, 4096, 4096), 1);
    EXPECT_EQ(blockDelta(0, 4096, 64), 64);
}

TEST(Types, Sentinels)
{
    EXPECT_GT(kInvalidAddr, 0xffffffffffffull);
    EXPECT_GT(kInvalidCycle, 0xffffffffffffull);
}

} // namespace
} // namespace csp
