/** @file Trace-level tests for every registered workload (paper
 *  Table 3): generation succeeds, respects the access budget, is
 *  deterministic, and carries the expected annotations. */

#include <gtest/gtest.h>

#include <set>

#include "workloads/registry.h"
#include "workloads/ubench/listsort.h"

namespace csp::workloads {
namespace {

WorkloadParams
smallParams()
{
    WorkloadParams params;
    params.scale = 20000;
    params.seed = 3;
    return params;
}

class WorkloadTraceTest
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadTraceTest, GeneratesNearTheAccessBudget)
{
    const auto workload = Registry::builtin().create(GetParam());
    const trace::TraceBuffer buffer =
        workload->generate(smallParams());
    EXPECT_GE(buffer.memAccesses(), smallParams().scale / 3);
    // Budget overshoot is bounded (one inner iteration at most).
    EXPECT_LE(buffer.memAccesses(), smallParams().scale * 3);
    EXPECT_GE(buffer.instructions(), buffer.memAccesses());
}

TEST_P(WorkloadTraceTest, DeterministicPerSeed)
{
    const auto workload = Registry::builtin().create(GetParam());
    const trace::TraceBuffer a = workload->generate(smallParams());
    const trace::TraceBuffer b = workload->generate(smallParams());
    ASSERT_EQ(a.size(), b.size());
    const auto a_recs = a.decode();
    const auto b_recs = b.decode();
    for (std::size_t i = 0; i < a_recs.size(); i += 97) {
        EXPECT_EQ(a_recs[i].vaddr, b_recs[i].vaddr) << "record " << i;
        EXPECT_EQ(a_recs[i].pc, b_recs[i].pc) << "record " << i;
    }
}

TEST_P(WorkloadTraceTest, SeedChangesTheTrace)
{
    const auto workload = Registry::builtin().create(GetParam());
    WorkloadParams other = smallParams();
    other.seed = 4;
    const trace::TraceBuffer a = workload->generate(smallParams());
    const trace::TraceBuffer b = workload->generate(other);
    bool differs = a.size() != b.size();
    trace::TraceCursor ca = a.cursor();
    trace::TraceCursor cb = b.cursor();
    while (!differs) {
        const trace::TraceRecord *ra = ca.next();
        const trace::TraceRecord *rb = cb.next();
        if (ra == nullptr || rb == nullptr)
            break;
        differs = ra->vaddr != rb->vaddr ||
                  ra->loaded_value != rb->loaded_value;
    }
    EXPECT_TRUE(differs);
}

TEST_P(WorkloadTraceTest, UsesMultipleCodeSites)
{
    const auto workload = Registry::builtin().create(GetParam());
    const trace::TraceBuffer buffer =
        workload->generate(smallParams());
    std::set<Addr> pcs;
    trace::TraceCursor cursor = buffer.cursor();
    while (const trace::TraceRecord *rec = cursor.next())
        pcs.insert(rec->pc);
    EXPECT_GE(pcs.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadTraceTest,
    ::testing::ValuesIn(Registry::builtin().names()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(Registry, ContainsPaperTable3Suites)
{
    const Registry &registry = Registry::builtin();
    EXPECT_EQ(registry.namesInSuite("spec2006").size(), 16u);
    EXPECT_GE(registry.namesInSuite("ubench").size(), 8u);
    EXPECT_GE(registry.namesInSuite("pbbs").size(), 4u);
    EXPECT_EQ(registry.namesInSuite("graph500").size(), 2u);
    EXPECT_EQ(registry.namesInSuite("hpcs").size(), 2u);
}

TEST(Registry, UnknownNameReported)
{
    EXPECT_FALSE(Registry::builtin().contains("no-such-workload"));
    EXPECT_TRUE(Registry::builtin().contains("listsort"));
}

TEST(Registry, NamesSortedAndUnique)
{
    const auto names = Registry::builtin().names();
    const std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), names.size());
}

TEST(WorkloadHints, PointerWorkloadsCarryArrowHints)
{
    // Paper section 6: the compiler hints accesses through
    // program-level pointers.
    for (const std::string name :
         {"list", "listsort", "bst", "maptest", "graph500-list"}) {
        const auto workload = Registry::builtin().create(name);
        const trace::TraceBuffer buffer =
            workload->generate(smallParams());
        std::uint64_t hinted = 0;
        trace::TraceCursor cursor = buffer.cursor();
        while (const trace::TraceRecord *rec = cursor.next()) {
            if (rec->isMem() &&
                rec->hint.ref_form == hints::RefForm::Arrow)
                ++hinted;
        }
        EXPECT_GT(hinted, buffer.memAccesses() / 10) << name;
    }
}

TEST(WorkloadHints, PointerChasesCarryDependenceFlags)
{
    for (const std::string name : {"list", "mcf", "maptest"}) {
        const auto workload = Registry::builtin().create(name);
        const trace::TraceBuffer buffer =
            workload->generate(smallParams());
        std::uint64_t dependent = 0;
        trace::TraceCursor cursor = buffer.cursor();
        while (const trace::TraceRecord *rec = cursor.next()) {
            if (rec->isMem() && rec->dep_on_prev_load)
                ++dependent;
        }
        EXPECT_GT(dependent, 0u) << name;
    }
}

TEST(WorkloadHints, ArrayWorkloadUsesIndexForm)
{
    const auto workload = Registry::builtin().create("array");
    const trace::TraceBuffer buffer = workload->generate(smallParams());
    std::uint64_t indexed = 0;
    trace::TraceCursor cursor = buffer.cursor();
    while (const trace::TraceRecord *rec = cursor.next()) {
        if (rec->isMem() && rec->hint.ref_form == hints::RefForm::Index)
            ++indexed;
    }
    EXPECT_GT(indexed, buffer.memAccesses() / 2);
}

TEST(ListSort, Fig1PatternSemanticallyLinear)
{
    // Paper Figure 1: logical indices advance 0,1,2,... within each
    // insertion walk even though addresses scatter.
    const auto samples =
        ubench::ListSort::accessPattern(100, 1);
    ASSERT_FALSE(samples.empty());
    std::uint64_t prev_logical = 0;
    bool monotone_within_walks = true;
    for (const auto &s : samples) {
        if (s.logical_index != 0 &&
            s.logical_index != prev_logical + 1)
            monotone_within_walks = false;
        prev_logical = s.logical_index;
    }
    EXPECT_TRUE(monotone_within_walks);
    // Addresses are not monotone (scattered placement).
    bool addr_monotone = true;
    for (std::size_t i = 1; i < samples.size(); ++i) {
        if (samples[i].addr < samples[i - 1].addr)
            addr_monotone = false;
    }
    EXPECT_FALSE(addr_monotone);
}

} // namespace
} // namespace csp::workloads
