/** @file Tests for dirty-line tracking and write-back accounting. */

#include <gtest/gtest.h>

#include "mem/hierarchy.h"

namespace csp::mem {
namespace {

MemoryConfig
tinyL1()
{
    MemoryConfig config;
    config.l1d.size_bytes = 2 * 64; // 1 set x 2 ways
    config.l1d.ways = 2;
    return config;
}

TEST(Writeback, StoreMarksLineDirtyAndEvictionWritesBack)
{
    Hierarchy h(tinyL1());
    Cycle t = 0;
    t = h.access(0x10000, t, /*is_store=*/true).complete + 1;
    // Two more lines in the same set evict the dirty one.
    t = h.access(0x20000, t).complete + 1;
    t = h.access(0x30000, t).complete + 1;
    EXPECT_EQ(h.stats().l1_writebacks, 1u);
}

TEST(Writeback, CleanEvictionsCostNothing)
{
    Hierarchy h(tinyL1());
    Cycle t = 0;
    for (Addr a : {0x10000, 0x20000, 0x30000, 0x40000})
        t = h.access(a, t).complete + 1;
    EXPECT_EQ(h.stats().l1_writebacks, 0u);
    EXPECT_EQ(h.stats().l2_writebacks, 0u);
}

TEST(Writeback, StoreHitDirtiesExistingLine)
{
    Hierarchy h(tinyL1());
    Cycle t = h.access(0x10000, 0).complete + 1; // clean fill
    t = h.access(0x10000, t, /*is_store=*/true).complete + 1; // hit
    t = h.access(0x20000, t).complete + 1;
    t = h.access(0x30000, t).complete + 1;
    EXPECT_EQ(h.stats().l1_writebacks, 1u);
}

TEST(Writeback, L1WritebackMarksL2Dirty)
{
    // After the L1 writeback, evicting the line from L2 must produce
    // an L2 writeback (dirty data reaching DRAM exactly once).
    MemoryConfig config = tinyL1();
    config.l2.size_bytes = 2 * 64; // 1 set x 2 ways at L2 as well
    config.l2.ways = 2;
    Hierarchy h(config);
    Cycle t = 0;
    t = h.access(0x10000, t, /*is_store=*/true).complete + 1;
    t = h.access(0x20000, t).complete + 1;
    t = h.access(0x30000, t).complete + 1; // L1 evicts dirty 0x10000
    EXPECT_EQ(h.stats().l1_writebacks, 1u);
    // Keep missing: L2 eventually displaces the dirty line.
    for (Addr a = 0x40000; a < 0x40000 + 64 * 8; a += 64)
        t = h.access(a, t).complete + 1;
    EXPECT_GE(h.stats().l2_writebacks, 1u);
}

TEST(Writeback, DirtyTrafficConsumesDramBandwidth)
{
    // Writebacks cost DRAM bandwidth only when dirty data leaves the
    // chip (L2 eviction). With both levels tiny and a large write
    // cost, a store-heavy sweep must take longer than a clean one of
    // identical shape.
    MemoryConfig config = tinyL1();
    config.l2.size_bytes = 2 * 64;
    config.l2.ways = 2;
    config.dram_issue_interval = 200;
    Hierarchy dirty(config);
    Hierarchy clean(config);
    Cycle t_dirty = 0;
    Cycle t_clean = 0;
    for (Addr a = 0x10000; a < 0x10000 + 64 * 64; a += 64) {
        t_dirty = dirty.access(a, t_dirty, /*is_store=*/true)
                      .complete +
                  1;
        t_clean = clean.access(a, t_clean).complete + 1;
    }
    EXPECT_GT(t_dirty, t_clean);
    EXPECT_GT(dirty.stats().l2_writebacks, 0u);
    EXPECT_EQ(clean.stats().l2_writebacks, 0u);
}

} // namespace
} // namespace csp::mem
