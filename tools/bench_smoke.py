#!/usr/bin/env python3
"""Bench smoke: perf gauges for the replay, tracing and profiling paths.

Runs four quick probes against an existing build tree and writes a
single JSON scorecard (BENCH_PR10.json) so CI tracks the perf trajectory:

  1. A reduced fig12 sweep (CSP_SCALE-scaled) timed end to end, with the
     peak resident set of the child process captured via getrusage --
     this machine image has no /usr/bin/time. The sweep-service caches
     are forced off (CSP_RESULT_CACHE=0, CSP_TRACE_CACHE=0) so this
     stays a cold-path wall-clock gauge no matter what state the working
     tree's results/cache happens to be in.
  2. `micro_prefetcher_ops` filtered to the replay-throughput, raw
     trace-decode, per-access observe(), lifecycle-tracing and
     self-profiling benchmarks, exported as google-benchmark JSON and
     distilled to insts/s, bytes/record, and ns/op.
  3. A cold-then-warm `cspsim --workloads` sweep against fresh cache
     directories: the warm pass must be fully memoized (zero cells
     simulated) and at least MIN_WARM_SWEEP_SPEEDUP_X faster end to end.
     The warm pass runs with --events-out, so the bar also proves a
     journaled warm sweep stays >= 10x, and the scorecard distills the
     journal's warm-path read/parse attribution.
  4. An events-overhead probe: the same uncached sweep timed with the
     journal off and on, interleaved best-of-2 per side. The journaled
     sweep must retain at least MIN_EVENTS_ENABLED_RATE of the plain
     sweep's wall-clock (events are a handful of atomic JSONL writes
     per cell -- they must stay invisible next to simulation work) and
     its cell CSV must be byte-identical.

The scorecard embeds the run-provenance manifest reported by
`cspsim --manifest` (build, config digest, host), so every archived
BENCH_*.json records exactly what produced its numbers.

The script fails (exit 1) if any replayed workload's packed encoding
compresses worse than MIN_COMPRESSION_X against the retired 56-byte
array-of-structs record, so a regression in the trace encoding turns
the bench-smoke job red rather than silently fattening sweeps.

It also gates the four "disabled observability must stay free" bars
(see MIN_DISABLED_RATE for how the bar relates to timer noise):

  - BM_TraceObs_NullSink (observer attached, every sink null) must
    retain at least MIN_DISABLED_RATE of BM_TraceObs_Control's insts/s.
  - BM_Profile_Disabled (no profiler attached -- the path every normal
    run takes) must retain at least MIN_DISABLED_RATE of the same
    control rate, so compiling in --profile costs nothing when unused.
  - BM_LearnObs_NullTap (observer attached, learning observer null)
    must retain at least MIN_DISABLED_RATE of the control rate, so the
    learning hooks cost nothing when --learn-out is not requested.
  - BM_MemObs_NullTap (observer attached, mem observer null) must
    retain at least MIN_DISABLED_RATE of the control rate, so the
    memory-hierarchy hooks cost nothing when --mem-out is not
    requested. BM_MemObs_Recorder (all three shadow models live) is
    distilled as an ungated overhead gauge.

And two absolute hot-path bars for the context prefetcher (the PR7
flat-CST/incremental-hash rework), so a hot-path regression turns the
job red on the machine that ran it:

  - replay mcf/context must sustain at least
    MIN_MCF_CONTEXT_INSTS_PER_SEC (floor set ~30% under the tuned
    path's measured rate to absorb runner-generation noise).
  - BM_Context (per-access observe cost) must stay under
    MAX_CONTEXT_OBSERVE_NS.

And the scale-out sweep-service bars (PR8 mmap replay + result cache):

  - BM_Decode_Packed (raw TraceCursor decode, no simulator) must
    sustain MIN_DECODE_PACKED_INSTS_PER_SEC -- the absolute floor for
    the decoder that both the in-memory and mmap paths share.
  - BM_Decode_Mmap must retain at least MIN_MMAP_DECODE_RATE of the
    packed rate, so the zero-copy streaming wrapper (window bookkeeping
    + MADV_DONTNEED releases) can never quietly regress decode.
  - The warm sweep pass must simulate zero cells and run at least
    MIN_WARM_SWEEP_SPEEDUP_X faster than the cold pass.

Usage: python3 tools/bench_smoke.py [--build-dir build] [--out BENCH_PR10.json]
"""

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time

# The retired array-of-structs trace record was 56 bytes; the packed
# encoding must stay at least this many times smaller per record.
AOS_RECORD_BYTES = 56.0
MIN_COMPRESSION_X = 2.0

# Disabled-path overhead bar, shared by lifecycle tracing (NullSink vs
# Control), self-profiling (Profile_Disabled vs Control) and the
# learning observer (NullTap vs Control). The disabled paths are
# codegen-identical to control (same template instantiation), so their
# true ratio is 1.0 -- but on single-vCPU CI runners two identical
# binaries timed seconds apart measure with up to ~5% spread even on
# best-of-N medians (measured: Profile_Disabled at 0.95 of control).
# The bar therefore sits below the noise floor but well above every
# *enabled* path's level (trace-obs 0.72, profile 0.74, learn-obs 0.86
# of control), so a hook accidentally left live on the disabled path
# still turns the job red.
MIN_DISABLED_RATE = 0.92

# Context-prefetcher hot-path bars (PR7). The tuned path replays mcf at
# ~3.0M insts/s and observes in ~330 ns on the dev machine; the floors
# leave ~30-40% headroom for slower CI runners while still catching a
# real regression (the pre-rework path ran at 1.26M insts/s / ~700 ns).
MIN_MCF_CONTEXT_INSTS_PER_SEC = 2.0e6
MAX_CONTEXT_OBSERVE_NS = 500.0

# Scale-out sweep-service bars (PR8). The shared decoder streams ~165M
# insts/s on the dev machine through either path; the absolute floor
# leaves ~2x headroom for slower CI runners. The mmap/packed ratio is
# measured at ~0.97 (same binary, same pass) -- 0.75 sits under the
# cross-benchmark timing noise but far above any real regression like a
# per-record syscall or a copy sneaking into the streaming wrapper.
MIN_DECODE_PACKED_INSTS_PER_SEC = 80.0e6
MIN_MMAP_DECODE_RATE = 0.75

# A fully-memoized sweep does no trace generation and no simulation --
# measured ~450x faster than cold on the dev machine. 10x is the
# acceptance bar: generous enough for process-startup-dominated CI
# runners, while a warm pass that re-simulates anything lands near 1x
# and fails loudly.
MIN_WARM_SWEEP_SPEEDUP_X = 10.0

# Sweep-observatory bar (PR9). The journal writes one preformatted
# line per event through an unbuffered FILE* under a mutex -- tens of
# microseconds across a whole sweep that simulates for seconds. 0.98
# is one-sided noise tolerance (best-of-2 interleaved passes), not a
# real budget: any measurable slowdown means an emitter landed on the
# per-access hot path and should fail loudly.
MIN_EVENTS_ENABLED_RATE = 0.98


def peak_child_rss_mb():
    """Peak RSS over all reaped children so far, in MiB (Linux: KiB)."""
    return resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss / 1024.0


def run_fig12(build_dir, scale, jobs):
    """Reduced fig12 sweep: wall seconds + child peak RSS.

    Must run before any other child process so RUSAGE_CHILDREN's
    high-water mark belongs to the sweep alone.
    """
    binary = os.path.join(build_dir, "bench", "fig12_speedup")
    # Caches pinned off so this stays a cold-path wall-clock gauge:
    # bench binaries default to uncached runSweep today, but the env
    # knobs make that explicit rather than an accident of defaults.
    env = dict(os.environ, CSP_SCALE=str(scale),
               CSP_RESULT_CACHE="0", CSP_TRACE_CACHE="0")
    start = time.monotonic()
    subprocess.run([binary, "--jobs", str(jobs)], check=True, env=env,
                   stdout=subprocess.DEVNULL)
    return {
        "scale_factor": scale,
        "jobs": jobs,
        "seconds": round(time.monotonic() - start, 3),
        "peak_rss_mb": round(peak_child_rss_mb(), 1),
    }


def run_micro_once(build_dir, min_time, repetitions, raw_out):
    """One micro-suite pass: per-benchmark median aggregates."""
    binary = os.path.join(build_dir, "bench", "micro_prefetcher_ops")
    subprocess.run(
        [
            binary,
            "--benchmark_filter="
            "BM_Replay_|BM_ReplayMmap_|BM_Decode_|"
            "BM_TraceObs_|BM_Profile_|BM_LearnObs_|BM_MemObs_|"
            "BM_Stride$|BM_Context$",
            f"--benchmark_min_time={min_time}",
            f"--benchmark_repetitions={repetitions}",
            "--benchmark_report_aggregates_only=true",
            f"--benchmark_out={raw_out}",
            "--benchmark_out_format=json",
        ],
        check=True,
        stdout=subprocess.DEVNULL,
    )
    with open(raw_out) as f:
        raw = json.load(f)["benchmarks"]
    medians = []
    for bench in raw:
        if bench.get("aggregate_name") != "median":
            continue
        bench = dict(bench)
        bench["name"] = bench["name"].removesuffix("_median")
        medians.append(bench)
    return medians


def run_micro(build_dir, min_time, repetitions, micro_runs, raw_out):
    """Replay + observe microbenchmarks as parsed google-benchmark JSON.

    Two layers of noise rejection, because every gate below is either an
    absolute bar or a ratio of two *separately-timed* benchmarks:

      1. within a pass, each benchmark runs `repetitions` times and only
         the median aggregate is kept (kills per-iteration jitter);
      2. the whole suite runs `micro_runs` times and, per benchmark, the
         pass with the lowest median real time wins (best-of-N).

    Best-of-N matters for the ratio gates: passes are sequential, so
    slow background-load drift hits a benchmark and its control
    unequally within one pass and can flap a 0.98 ratio bar even on
    medians (observed: control medians drifting ~9% between passes on a
    single-vCPU runner). The fastest observation of each benchmark is
    the least load-contaminated estimate of its true cost, and a real
    regression depresses every pass, so the gates still catch it.
    """
    best = {}
    for _ in range(max(micro_runs, 1)):
        for bench in run_micro_once(build_dir, min_time, repetitions,
                                    raw_out):
            kept = best.get(bench["name"])
            if kept is None or bench["real_time"] < kept["real_time"]:
                best[bench["name"]] = bench
    return list(best.values())


def run_manifest(build_dir):
    """Provenance block from `cspsim --manifest` (None if unavailable)."""
    binary = os.path.join(build_dir, "tools", "cspsim")
    try:
        out = subprocess.run([binary, "--manifest"], check=True,
                             stdout=subprocess.PIPE).stdout
        return json.loads(out)
    except (OSError, subprocess.CalledProcessError, ValueError) as err:
        print(f"warning: no manifest from {binary}: {err}",
              file=sys.stderr)
        return None


def distill(benchmarks):
    """Split raw entries into replay/tracing/profiling rates + observe costs."""
    replay = {}
    replay_mmap = {}
    decode = {}
    trace_obs = {}
    profile = {}
    learn_obs = {}
    mem_obs = {}
    observe_ns = {}
    for bench in benchmarks:
        name = bench["name"]
        if name.startswith("BM_ReplayMmap_"):
            # BM_ReplayMmap_<Workload>_<Prefetcher>: streaming replay
            # out of a mapped trace file (no bytes_per_record -- the
            # encoding gauge belongs to the in-memory twin above).
            _, _, workload, prefetcher = name.split("_")
            replay_mmap[f"{workload.lower()}/{prefetcher.lower()}"] = {
                "insts_per_sec": round(bench["insts/s"]),
                "trace_bytes": int(bench["trace_bytes"]),
            }
        elif name.startswith("BM_Replay_"):
            # BM_Replay_<Workload>_<Prefetcher>
            _, _, workload, prefetcher = name.split("_")
            bpr = bench["bytes_per_record"]
            replay[f"{workload.lower()}/{prefetcher.lower()}"] = {
                "insts_per_sec": round(bench["insts/s"]),
                "bytes_per_record": round(bpr, 2),
                "compression_x": round(AOS_RECORD_BYTES / bpr, 2),
                "trace_bytes": int(bench["trace_bytes"]),
            }
        elif name.startswith("BM_Decode_"):
            # BM_Decode_<Packed|Mmap>: raw decoder rates, no simulator.
            mode = name.removeprefix("BM_Decode_").lower()
            decode[mode] = {
                "insts_per_sec": round(bench["insts/s"]),
                "records_per_sec": round(bench["records/s"]),
            }
        elif name.startswith("BM_TraceObs_"):
            # BM_TraceObs_<Mode>: lifecycle-tracing replay rates
            mode = name.removeprefix("BM_TraceObs_").lower()
            trace_obs[mode] = round(bench["insts/s"])
        elif name.startswith("BM_Profile_"):
            # BM_Profile_<Disabled|Enabled>: self-profiling replay rates
            mode = name.removeprefix("BM_Profile_").lower()
            profile[mode] = round(bench["insts/s"])
        elif name.startswith("BM_LearnObs_"):
            # BM_LearnObs_<NullTap|Recorder>: learning-observer rates
            mode = name.removeprefix("BM_LearnObs_").lower()
            learn_obs[mode] = round(bench["insts/s"])
        elif name.startswith("BM_MemObs_"):
            # BM_MemObs_<NullTap|Recorder>: mem-observer replay rates
            mode = name.removeprefix("BM_MemObs_").lower()
            mem_obs[mode] = round(bench["insts/s"])
        else:
            observe_ns[name.removeprefix("BM_").lower()] = round(
                bench["real_time"], 1)
    return (replay, replay_mmap, decode, trace_obs, profile, learn_obs,
            mem_obs, observe_ns)


def run_sweep_probe(build_dir, scale, jobs):
    """Cold-then-warm sweep through fresh cache dirs; wall times + cache
    accounting.

    Both passes run the identical command against the same (initially
    empty) result/trace cache directories, so the second pass exercises
    exactly the memoized path a real re-run takes: O(1) trace-header
    reads for the digests, then every cell served from results/cache.
    The returned dict carries what main() gates: the warm pass's cache
    block (zero simulated cells is the correctness half of the bar) and
    the cold/warm wall-clock ratio (the perf half). The cell CSVs on
    stdout must match byte for byte -- caching must be invisible in the
    deterministic data.

    The warm pass also runs with --events-out, so the >= 10x bar covers
    a journaled warm sweep, and the journal's sweep_end roll-up is
    distilled into the scorecard's warm-path read/parse attribution
    (the JSON-parse bottleneck the observatory exists to quantify).
    """
    binary = os.path.join(build_dir, "tools", "cspsim")
    with tempfile.TemporaryDirectory(prefix="csp_bench_sweep_") as tmp:
        cmd = [
            binary, "--workloads", "ubench", "--prefetcher", "all",
            "--scale", str(scale), "--jobs", str(jobs),
            "--result-cache-dir", os.path.join(tmp, "results"),
            "--trace-cache", os.path.join(tmp, "traces"),
        ]

        def one_pass(label, extra=()):
            out = os.path.join(tmp, label + ".json")
            start = time.monotonic()
            csv = subprocess.run(cmd + ["--sweep-out", out] +
                                 list(extra),
                                 check=True,
                                 stdout=subprocess.PIPE).stdout
            seconds = time.monotonic() - start
            with open(out) as f:
                cache = json.load(f)["cache"]
            return seconds, cache, csv

        cold_seconds, cold_cache, cold_csv = one_pass("cold")
        events_path = os.path.join(tmp, "warm.events.jsonl")
        warm_seconds, warm_cache, warm_csv = one_pass(
            "warm", ["--events-out", events_path])
        journal = distill_journal(events_path)
    return {
        "scale": scale,
        "jobs": jobs,
        "cells": int(warm_cache["cells_total"]),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "speedup_x": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        "cold_cells_simulated": int(cold_cache["cells_simulated"]),
        "warm_cells_simulated": int(warm_cache["cells_simulated"]),
        "warm_cells_cached": int(warm_cache["cells_cached"]),
        "csv_identical": cold_csv == warm_csv,
        "warm_journal": journal,
    }


def distill_journal(path):
    """Warm-path attribution from a --events-out journal's roll-up.

    Returns the sweep_end cache counters plus event counts; journal_ok
    is the (gated) structural check: every line parses, the journal
    opens with sweep_start and carries exactly one sweep_end.
    """
    events = []
    try:
        with open(path) as f:
            for line in f:
                if line.strip():
                    events.append(json.loads(line))
    except (OSError, ValueError) as err:
        print(f"warning: bad events journal {path}: {err}",
              file=sys.stderr)
        return {"journal_ok": False}
    ends = [ev for ev in events if ev.get("event") == "sweep_end"]
    ok = (bool(events) and events[0].get("event") == "sweep_start"
          and events[0].get("schema") == "csp-events-v1"
          and len(ends) == 1)
    if not ok:
        return {"journal_ok": False, "events": len(events)}
    end = ends[0]
    cached_wall_ns = sum(ev.get("duration_ns", 0) for ev in events
                         if ev.get("event") == "cell_end"
                         and ev.get("source") == "cached")
    return {
        "journal_ok": True,
        "events": len(events),
        "cache_read_ns": int(end["cache_read_ns"]),
        "cache_parse_ns": int(end["cache_parse_ns"]),
        "cache_entry_bytes": int(end["cache_entry_bytes"]),
        "cache_verify_failures": int(end["cache_verify_failures"]),
        "cached_cell_wall_ns": cached_wall_ns,
    }


def run_events_overhead(build_dir, scale, jobs):
    """Uncached sweep timed with the journal off and on, interleaved
    best-of-2 per side.

    Interleaving pairs each off-pass with an adjacent on-pass so slow
    load drift hits both sides roughly equally; best-of-2 keeps the
    least contaminated observation of each side (the same reasoning as
    run_micro's best-of-N). The ratio gate is one-sided: only a
    journaled sweep measurably *slower* than the plain one fails.
    """
    binary = os.path.join(build_dir, "tools", "cspsim")
    with tempfile.TemporaryDirectory(prefix="csp_bench_events_") as tmp:
        cmd = [
            binary, "--workloads", "array,list,bst",
            "--prefetcher", "all", "--scale", str(scale),
            "--jobs", str(jobs),
            "--no-result-cache", "--no-trace-cache",
        ]

        def one_pass(extra=()):
            start = time.monotonic()
            csv = subprocess.run(cmd + list(extra), check=True,
                                 stdout=subprocess.PIPE).stdout
            return time.monotonic() - start, csv

        events_path = os.path.join(tmp, "events.jsonl")
        t_off, t_on = [], []
        csv_off = csv_on = None
        for _ in range(2):
            seconds, csv_off = one_pass()
            t_off.append(seconds)
            seconds, csv_on = one_pass(["--events-out", events_path])
            t_on.append(seconds)
    best_off, best_on = min(t_off), min(t_on)
    return {
        "scale": scale,
        "jobs": jobs,
        "off_seconds": round(best_off, 3),
        "on_seconds": round(best_on, 3),
        "enabled_rate": round(best_off / max(best_on, 1e-9), 4),
        "csv_identical": csv_off == csv_on,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_PR10.json")
    parser.add_argument("--fig12-scale", type=float, default=0.05,
                        help="CSP_SCALE for the reduced fig12 sweep")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--sweep-scale", type=int, default=100000,
                        help="per-workload scale for the cold/warm "
                             "sweep-cache probe")
    parser.add_argument("--events-scale", type=int, default=100000,
                        help="per-workload scale for the events-"
                             "overhead probe")
    parser.add_argument("--min-time", type=float, default=0.1,
                        help="--benchmark_min_time per microbenchmark")
    parser.add_argument("--repetitions", type=int, default=3,
                        help="benchmark repetitions; gates read medians")
    parser.add_argument("--micro-runs", type=int, default=3,
                        help="micro-suite passes; per benchmark the "
                             "fastest pass's median wins (best-of-N)")
    args = parser.parse_args()

    fig12 = run_fig12(args.build_dir, args.fig12_scale, args.jobs)
    print(f"fig12 (scale x{args.fig12_scale}, jobs {args.jobs}): "
          f"{fig12['seconds']} s, peak RSS {fig12['peak_rss_mb']} MiB")

    sweep = run_sweep_probe(args.build_dir, args.sweep_scale, args.jobs)
    print(f"sweep probe (scale {args.sweep_scale}, {sweep['cells']} "
          f"cells): cold {sweep['cold_seconds']} s, warm "
          f"{sweep['warm_seconds']} s ({sweep['speedup_x']}x, "
          f"{sweep['warm_cells_simulated']} cells re-simulated)")
    journal = sweep["warm_journal"]
    if journal.get("journal_ok"):
        print(f"warm journal: {journal['events']} events, read "
              f"{journal['cache_read_ns'] / 1e6:.3f} ms, parse "
              f"{journal['cache_parse_ns'] / 1e6:.3f} ms over "
              f"{journal['cache_entry_bytes']} entry bytes")

    events = run_events_overhead(args.build_dir, args.events_scale,
                                 args.jobs)
    print(f"events overhead (scale {args.events_scale}): off "
          f"{events['off_seconds']} s, on {events['on_seconds']} s "
          f"(rate {events['enabled_rate']}, "
          f">= {MIN_EVENTS_ENABLED_RATE} required)")

    raw_out = args.out + ".raw"
    (replay, replay_mmap, decode, trace_obs, profile, learn_obs,
     mem_obs, observe_ns) = distill(
        run_micro(args.build_dir, args.min_time, args.repetitions,
                  args.micro_runs, raw_out))
    os.remove(raw_out)

    control = trace_obs.get("control", 0)
    disabled_rate = (trace_obs["nullsink"] / control if control else 0.0)
    profile_rate = (profile.get("disabled", 0) / control
                    if control else 0.0)
    learn_rate = (learn_obs.get("nulltap", 0) / control
                  if control else 0.0)
    mem_rate = (mem_obs.get("nulltap", 0) / control if control else 0.0)
    # Ungated gauge: what the live shadow models (infinite tag set +
    # Fenwick stack distance + shadow cache per access) actually cost.
    mem_recorder_rate = (mem_obs.get("recorder", 0) / control
                         if control else 0.0)
    worst = min(replay.values(), key=lambda r: r["compression_x"])
    packed_rate = decode.get("packed", {}).get("insts_per_sec", 0)
    mmap_rate = decode.get("mmap", {}).get("insts_per_sec", 0)
    mmap_decode_rate = (mmap_rate / packed_rate if packed_rate else 0.0)
    report = {
        "schema": "csp-bench-smoke-v7",
        "generated_by": "tools/bench_smoke.py",
        "manifest": run_manifest(args.build_dir),
        "aos_record_bytes": AOS_RECORD_BYTES,
        "min_compression_x": worst["compression_x"],
        "replay": replay,
        "replay_mmap": replay_mmap,
        "decode": decode,
        "mmap_decode_rate": round(mmap_decode_rate, 4),
        "warm_sweep": sweep,
        "events_overhead": events,
        "trace_obs_insts_per_sec": trace_obs,
        "trace_obs_disabled_rate": round(disabled_rate, 4),
        "profile_insts_per_sec": profile,
        "profile_disabled_rate": round(profile_rate, 4),
        "learn_obs_insts_per_sec": learn_obs,
        "learn_obs_disabled_rate": round(learn_rate, 4),
        "mem_obs_insts_per_sec": mem_obs,
        "mem_obs_disabled_rate": round(mem_rate, 4),
        "mem_obs_recorder_rate": round(mem_recorder_rate, 4),
        "observe_ns_per_access": observe_ns,
        "hot_path_bars": {
            "min_mcf_context_insts_per_sec": MIN_MCF_CONTEXT_INSTS_PER_SEC,
            "max_context_observe_ns": MAX_CONTEXT_OBSERVE_NS,
            "min_decode_packed_insts_per_sec":
                MIN_DECODE_PACKED_INSTS_PER_SEC,
            "min_mmap_decode_rate": MIN_MMAP_DECODE_RATE,
            "min_warm_sweep_speedup_x": MIN_WARM_SWEEP_SPEEDUP_X,
            "min_events_enabled_rate": MIN_EVENTS_ENABLED_RATE,
        },
        "fig12_reduced_sweep": fig12,
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")

    for key, gauges in sorted(replay.items()):
        print(f"replay {key}: {gauges['insts_per_sec'] / 1e6:.2f} M insts/s, "
              f"{gauges['bytes_per_record']} B/record "
              f"({gauges['compression_x']}x vs AoS)")
    for key, gauges in sorted(replay_mmap.items()):
        print(f"replay-mmap {key}: "
              f"{gauges['insts_per_sec'] / 1e6:.2f} M insts/s")
    print(f"decode packed {packed_rate / 1e6:.2f} M insts/s, mmap "
          f"{mmap_rate / 1e6:.2f} M insts/s "
          f"(rate {mmap_decode_rate:.4f}, "
          f">= {MIN_MMAP_DECODE_RATE} required)")
    for mode in ("control", "nullsink", "enabled"):
        if mode in trace_obs:
            print(f"trace-obs {mode}: {trace_obs[mode] / 1e6:.2f} M insts/s")
    for mode in ("disabled", "enabled"):
        if mode in profile:
            print(f"profile {mode}: {profile[mode] / 1e6:.2f} M insts/s")
    for mode in ("nulltap", "recorder"):
        if mode in learn_obs:
            print(f"learn-obs {mode}: {learn_obs[mode] / 1e6:.2f} "
                  f"M insts/s")
    for mode in ("nulltap", "recorder"):
        if mode in mem_obs:
            print(f"mem-obs {mode}: {mem_obs[mode] / 1e6:.2f} "
                  f"M insts/s")
    print(f"trace-obs disabled-path rate: {disabled_rate:.4f} "
          f"(>= {MIN_DISABLED_RATE} required)")
    print(f"profile disabled-path rate: {profile_rate:.4f} "
          f"(>= {MIN_DISABLED_RATE} required)")
    print(f"learn-obs disabled-path rate: {learn_rate:.4f} "
          f"(>= {MIN_DISABLED_RATE} required)")
    print(f"mem-obs disabled-path rate: {mem_rate:.4f} "
          f"(>= {MIN_DISABLED_RATE} required); recorder rate "
          f"{mem_recorder_rate:.4f} (gauge)")
    mcf_context = replay.get("mcf/context", {}).get("insts_per_sec", 0)
    context_ns = observe_ns.get("context", float("inf"))
    print(f"hot path: mcf/context {mcf_context / 1e6:.2f} M insts/s "
          f"(>= {MIN_MCF_CONTEXT_INSTS_PER_SEC / 1e6:.2f} M required), "
          f"context observe {context_ns} ns/access "
          f"(<= {MAX_CONTEXT_OBSERVE_NS} ns required)")
    print(f"wrote {args.out}")

    failed = False
    if worst["compression_x"] < MIN_COMPRESSION_X:
        print(f"FAIL: worst compression {worst['compression_x']}x "
              f"< required {MIN_COMPRESSION_X}x", file=sys.stderr)
        failed = True
    if disabled_rate < MIN_DISABLED_RATE:
        print(f"FAIL: disabled-path tracing keeps only "
              f"{disabled_rate:.4f} of the control replay rate "
              f"(bar: {MIN_DISABLED_RATE})", file=sys.stderr)
        failed = True
    if profile_rate < MIN_DISABLED_RATE:
        print(f"FAIL: disabled-path profiling keeps only "
              f"{profile_rate:.4f} of the control replay rate "
              f"(bar: {MIN_DISABLED_RATE})", file=sys.stderr)
        failed = True
    if learn_rate < MIN_DISABLED_RATE:
        print(f"FAIL: disabled learning observer keeps only "
              f"{learn_rate:.4f} of the control replay rate "
              f"(bar: {MIN_DISABLED_RATE})", file=sys.stderr)
        failed = True
    if mem_rate < MIN_DISABLED_RATE:
        print(f"FAIL: disabled mem observer keeps only "
              f"{mem_rate:.4f} of the control replay rate "
              f"(bar: {MIN_DISABLED_RATE})", file=sys.stderr)
        failed = True
    if mcf_context < MIN_MCF_CONTEXT_INSTS_PER_SEC:
        print(f"FAIL: replay mcf/context {mcf_context / 1e6:.2f} M "
              f"insts/s < required "
              f"{MIN_MCF_CONTEXT_INSTS_PER_SEC / 1e6:.2f} M",
              file=sys.stderr)
        failed = True
    if context_ns > MAX_CONTEXT_OBSERVE_NS:
        print(f"FAIL: context observe {context_ns} ns/access > "
              f"ceiling {MAX_CONTEXT_OBSERVE_NS} ns",
              file=sys.stderr)
        failed = True
    if packed_rate < MIN_DECODE_PACKED_INSTS_PER_SEC:
        print(f"FAIL: packed decode {packed_rate / 1e6:.2f} M insts/s "
              f"< floor {MIN_DECODE_PACKED_INSTS_PER_SEC / 1e6:.2f} M",
              file=sys.stderr)
        failed = True
    if mmap_decode_rate < MIN_MMAP_DECODE_RATE:
        print(f"FAIL: mmap decode keeps only {mmap_decode_rate:.4f} "
              f"of the packed rate (bar: {MIN_MMAP_DECODE_RATE})",
              file=sys.stderr)
        failed = True
    if sweep["warm_cells_simulated"] != 0:
        print(f"FAIL: warm sweep re-simulated "
              f"{sweep['warm_cells_simulated']} cells (must be 0)",
              file=sys.stderr)
        failed = True
    if not sweep["csv_identical"]:
        print("FAIL: warm sweep CSV differs from cold sweep CSV",
              file=sys.stderr)
        failed = True
    if sweep["speedup_x"] < MIN_WARM_SWEEP_SPEEDUP_X:
        print(f"FAIL: warm sweep only {sweep['speedup_x']}x faster "
              f"than cold (bar: {MIN_WARM_SWEEP_SPEEDUP_X}x)",
              file=sys.stderr)
        failed = True
    if not journal.get("journal_ok"):
        print("FAIL: warm sweep --events-out journal is malformed",
              file=sys.stderr)
        failed = True
    if events["enabled_rate"] < MIN_EVENTS_ENABLED_RATE:
        print(f"FAIL: journaled sweep keeps only "
              f"{events['enabled_rate']} of the plain sweep's rate "
              f"(bar: {MIN_EVENTS_ENABLED_RATE})", file=sys.stderr)
        failed = True
    if not events["csv_identical"]:
        print("FAIL: sweep CSV differs with --events-out on",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
