#!/usr/bin/env python3
"""Validate a cspsim --events-out sweep journal (csp-events-v1 JSONL),
so CI catches a malformed or incoherent journal before csptop renders
it. Works on single-shard journals and on cspmerge --events-out merged
journals alike (events are grouped per shard before checking order).

Checks, in order:

  1. Every line parses as a JSON object carrying event (string) and
     t_ns / seq / shard (non-negative integers).
  2. Per shard: the first event is sweep_start with
     schema "csp-events-v1", seq is strictly increasing and t_ns is
     non-decreasing (atomic same-mutex stamping in the writer), and
     there is at most one sweep_start and one sweep_end.
  3. Every event carries the required keys for its type (see
     REQUIRED_BY_EVENT), cell_end's source is cached|simulated, and
     trace_gen/trace_cache digests are non-empty.
  4. Per shard: cell_start/cell_end pair up by cell id — every
     cell_end closes an open cell_start and nothing is left open when
     sweep_end is present.
  5. Per shard: only evict / cache_trim events may follow sweep_end
     (the post-sweep cache trim is the one thing cspsim journals after
     the roll-up).
  6. When sweep_end is present: its cells_owned equals the shard's
     cell_end count and cells_cached / cells_simulated match the
     observed source attribution.

--require-sweep-end additionally fails when any shard's journal has no
sweep_end — CI uses it to assert the sweep ran to completion.

Exit 0 and a one-line summary on success; exit 1 with the first few
violations otherwise.

Usage: python3 tools/check_events.py JOURNAL.jsonl [--require-sweep-end]
"""

import collections
import json
import sys

SCHEMA = "csp-events-v1"

# Keys beyond the envelope (event/t_ns/seq/shard) every instance of an
# event type must carry. Unknown event types are an error: the schema
# is closed so a renamed emitter fails here instead of silently
# vanishing from csptop.
REQUIRED_BY_EVENT = {
    "sweep_start": (
        "schema", "unix_ns", "config_digest", "seed", "scale",
        "placement", "workloads", "prefetchers", "shard_count", "jobs",
        "git_sha",
    ),
    "trace_gen": (
        "workload", "digest", "records", "insts", "accesses",
        "duration_ns", "cached", "worker",
    ),
    "trace_cache": ("workload", "digest", "records", "insts", "worker"),
    "trace_load": ("workload", "status", "duration_ns", "worker"),
    "schedule": ("cells_total", "cells_owned", "insts_owned",
                 "trace_digest"),
    "heartbeat": ("cells_done", "cells_expected", "cells_cached",
                  "insts_done", "insts_total", "insts_per_sec"),
    "cell_start": ("cell", "workload", "prefetcher", "worker"),
    "cell_end": ("cell", "workload", "prefetcher", "worker", "source",
                 "duration_ns", "insts"),
    "sweep_end": (
        "cells_owned", "cells_cached", "cells_simulated",
        "trace_cache_hits", "cache_read_ns", "cache_parse_ns",
        "cache_entry_bytes", "cache_verify_failures", "trace_gen_ns",
        "sim_ns", "stats",
    ),
    "evict": ("entry", "bytes"),
    "cache_trim": ("max_bytes", "scanned_entries", "scanned_bytes",
                   "evicted_entries", "evicted_bytes"),
}

POST_SWEEP_END = {"evict", "cache_trim"}


def check(path, require_sweep_end=False):
    errors = []
    per_shard = collections.defaultdict(list)  # shard -> [(line_no, ev)]
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {line_no}: not valid JSON: {exc}")
                continue
            if not isinstance(ev, dict):
                errors.append(f"line {line_no}: not a JSON object")
                continue
            if not isinstance(ev.get("event"), str):
                errors.append(f"line {line_no}: missing event name")
                continue
            bad = [k for k in ("t_ns", "seq", "shard")
                   if not isinstance(ev.get(k), int) or ev[k] < 0]
            if bad:
                errors.append(
                    f"line {line_no}: bad envelope field(s) "
                    f"{','.join(bad)}")
                continue
            kind = ev["event"]
            if kind not in REQUIRED_BY_EVENT:
                errors.append(
                    f"line {line_no}: unknown event type {kind!r}")
                continue
            missing = [k for k in REQUIRED_BY_EVENT[kind]
                       if k not in ev]
            if missing:
                errors.append(
                    f"line {line_no}: {kind} missing "
                    f"{','.join(missing)}")
            if kind == "cell_end" and ev.get("source") not in (
                    "cached", "simulated"):
                errors.append(
                    f"line {line_no}: cell_end source must be "
                    f"cached|simulated, got {ev.get('source')!r}")
            if kind in ("trace_gen", "trace_cache") and not ev.get(
                    "digest"):
                errors.append(f"line {line_no}: {kind} empty digest")
            per_shard[ev["shard"]].append((line_no, ev))

    counts = collections.Counter()
    for shard in sorted(per_shard):
        events = per_shard[shard]
        where = f"shard {shard}"
        first_no, first = events[0]
        if first["event"] != "sweep_start":
            errors.append(
                f"{where}: first event is {first['event']!r} "
                f"(line {first_no}), expected sweep_start")
        elif first.get("schema") != SCHEMA:
            errors.append(
                f"{where}: sweep_start schema "
                f"{first.get('schema')!r}, expected {SCHEMA!r}")
        prev_seq, prev_t = -1, 0
        open_cells = {}
        end = None
        ended_at = None
        for line_no, ev in events:
            counts[ev["event"]] += 1
            if ev["seq"] <= prev_seq:
                errors.append(
                    f"line {line_no}: {where} seq {ev['seq']} not "
                    f"strictly increasing (prev {prev_seq})")
            if ev["t_ns"] < prev_t:
                errors.append(
                    f"line {line_no}: {where} t_ns {ev['t_ns']} went "
                    f"backwards (prev {prev_t})")
            prev_seq, prev_t = ev["seq"], ev["t_ns"]
            kind = ev["event"]
            if ended_at is not None and kind not in POST_SWEEP_END:
                errors.append(
                    f"line {line_no}: {where} {kind} after sweep_end "
                    f"(line {ended_at}); only "
                    f"{'/'.join(sorted(POST_SWEEP_END))} may follow")
            if kind == "sweep_start" and ev is not first:
                errors.append(
                    f"line {line_no}: {where} second sweep_start")
            elif kind == "cell_start":
                if ev.get("cell") in open_cells:
                    errors.append(
                        f"line {line_no}: {where} cell "
                        f"{ev.get('cell')} started twice")
                open_cells[ev.get("cell")] = line_no
            elif kind == "cell_end":
                if ev.get("cell") not in open_cells:
                    errors.append(
                        f"line {line_no}: {where} cell_end for cell "
                        f"{ev.get('cell')} without cell_start")
                else:
                    del open_cells[ev.get("cell")]
            elif kind == "sweep_end":
                if end is not None:
                    errors.append(
                        f"line {line_no}: {where} second sweep_end")
                end, ended_at = ev, line_no
        if end is not None:
            if open_cells:
                cells = ",".join(str(c) for c in sorted(
                    open_cells, key=str))
                errors.append(
                    f"{where}: cells {cells} still open at sweep_end")
            done = [ev for _, ev in events if ev["event"] == "cell_end"]
            cached = sum(1 for ev in done
                         if ev.get("source") == "cached")
            for key, have in (
                    ("cells_owned", len(done)),
                    ("cells_cached", cached),
                    ("cells_simulated", len(done) - cached)):
                if end.get(key) != have:
                    errors.append(
                        f"{where}: sweep_end {key}={end.get(key)} but "
                        f"journal shows {have}")
        elif require_sweep_end:
            errors.append(f"{where}: no sweep_end (sweep incomplete?)")

    if not per_shard:
        errors.append("journal has no events")
    return errors, counts, len(per_shard)


def main(argv):
    require_sweep_end = "--require-sweep-end" in argv
    paths = [a for a in argv[1:] if not a.startswith("--")]
    unknown = [a for a in argv[1:]
               if a.startswith("--") and a != "--require-sweep-end"]
    if len(paths) != 1 or unknown:
        print(__doc__.strip().splitlines()[-1], file=sys.stderr)
        return 2
    errors, counts, shards = check(paths[0], require_sweep_end)
    if errors:
        for err in errors[:10]:
            print(f"check_events: {err}", file=sys.stderr)
        extra = len(errors) - 10
        if extra > 0:
            print(f"check_events: ... and {extra} more",
                  file=sys.stderr)
        return 1
    total = sum(counts.values())
    top = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
    print(f"check_events: OK: {paths[0]}: {total} events across "
          f"{shards} shard(s) ({top})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
