#!/usr/bin/env python3
"""Validate a cspsim --learn-out file against the csp-learn-v1 schema,
so CI catches a malformed learning-state export before csplearn or
cspdiff consume it.

Checks, in order:

  1. The file parses as JSON with schema == "csp-learn-v1", an embedded
     run manifest, a prefetcher name, and the learn summary block.
  2. The learn summary carries the cst / policy / reward sub-blocks
     with numeric counters, and the internal accounting adds up
     (probe_hits <= probes, inserts + duplicates <= insert_attempts,
     positive + negative reward counts are non-negative).
  3. The snapshots array is non-empty, snapshot lookups are strictly
     increasing, epsilon/accuracy/entropy stay inside [0, 1], and
     cst_live_entries never exceeds cst_entries.
  4. Every top_contexts entry has a numeric key/churn and well-formed
     links (delta != 0, score within the signed Score8 range).

Exit 0 and a one-line summary on success; exit 1 with the first few
violations otherwise.

Usage: python3 tools/check_learn_json.py LEARN.json
"""

import json
import sys

SUMMARY_BLOCKS = {
    "cst": ("probes", "probe_hits", "insert_attempts", "inserts",
            "duplicates", "new_entries", "entry_evictions",
            "link_evictions", "tag_conflicts"),
    "policy": ("selections", "real", "shadow", "explorations",
               "epsilon_updates", "epsilon", "accuracy", "entropy"),
    "reward": ("cumulative", "positive", "negative", "expiries"),
}

SNAPSHOT_KEYS = ("lookup", "cycle", "epsilon", "accuracy", "entropy",
                 "cumulative_reward", "explorations", "associations",
                 "pq_hits", "pq_expiries", "cst_live_entries",
                 "cst_entries", "top_contexts")


def is_num(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check(path):
    errors = []
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"], 0

    if not isinstance(doc, dict):
        return ["top level is not a JSON object"], 0
    if doc.get("schema") != "csp-learn-v1":
        errors.append(f"schema {doc.get('schema')!r} != 'csp-learn-v1'")
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        errors.append("missing embedded run manifest")
    elif manifest.get("schema") != "csp-run-manifest-v1":
        errors.append(f"manifest schema {manifest.get('schema')!r}")
    if not isinstance(doc.get("prefetcher"), str):
        errors.append("missing prefetcher name")

    learn = doc.get("learn")
    if not isinstance(learn, dict):
        return errors + ["missing learn summary block"], 0
    for block, keys in SUMMARY_BLOCKS.items():
        sub = learn.get(block)
        if not isinstance(sub, dict):
            errors.append(f"learn.{block} missing")
            continue
        for key in keys:
            if not is_num(sub.get(key)):
                errors.append(f"learn.{block}.{key} missing or "
                              f"non-numeric")
    cst = learn.get("cst", {})
    if is_num(cst.get("probes")) and is_num(cst.get("probe_hits")):
        if cst["probe_hits"] > cst["probes"]:
            errors.append("probe_hits exceeds probes")
    if all(is_num(cst.get(k))
           for k in ("inserts", "duplicates", "insert_attempts")):
        if cst["inserts"] + cst["duplicates"] > cst["insert_attempts"]:
            errors.append("inserts + duplicates exceed insert_attempts")

    snapshots = doc.get("snapshots")
    if not isinstance(snapshots, list) or not snapshots:
        return errors + ["snapshots array missing or empty"], 0
    last_lookup = -1
    for n, snap in enumerate(snapshots):
        if not isinstance(snap, dict):
            errors.append(f"snapshot {n}: not an object")
            continue
        missing = [k for k in SNAPSHOT_KEYS if k not in snap]
        if missing:
            errors.append(f"snapshot {n}: missing {missing}")
            continue
        if snap["lookup"] <= last_lookup:
            errors.append(f"snapshot {n}: lookup {snap['lookup']} not "
                          f"increasing (prev {last_lookup})")
        last_lookup = snap["lookup"]
        for key in ("epsilon", "accuracy", "entropy"):
            value = snap[key]
            if not is_num(value) or not 0.0 <= value <= 1.0:
                errors.append(f"snapshot {n}: {key} {value!r} outside "
                              f"[0, 1]")
        if snap["cst_live_entries"] > snap["cst_entries"]:
            errors.append(f"snapshot {n}: cst_live_entries exceeds "
                          f"cst_entries")
        for c, ctx in enumerate(snap["top_contexts"]):
            if not (is_num(ctx.get("key")) and is_num(ctx.get("churn"))):
                errors.append(f"snapshot {n} ctx {c}: bad key/churn")
                continue
            for link in ctx.get("links", []):
                if not is_num(link.get("delta")) or link["delta"] == 0:
                    errors.append(f"snapshot {n} ctx {c}: bad link "
                                  f"delta {link.get('delta')!r}")
                elif not is_num(link.get("score")) or \
                        not -128 <= link["score"] <= 127:
                    errors.append(f"snapshot {n} ctx {c}: score "
                                  f"{link.get('score')!r} outside "
                                  f"Score8 range")
    return errors, len(snapshots)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    errors, snapshots = check(path)
    if errors:
        for err in errors[:20]:
            print(f"FAIL {path}: {err}", file=sys.stderr)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    print(f"OK {path}: {snapshots} snapshots")
    return 0


if __name__ == "__main__":
    sys.exit(main())
