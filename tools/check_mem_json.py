#!/usr/bin/env python3
"""Validate a cspsim --mem-out file against the csp-mem-v1 schema, so
CI catches a malformed memory-observatory export before cspmem or
cspdiff consume it.

Checks, in order:

  1. The file parses as JSON with schema == "csp-mem-v1", an embedded
     run manifest, a prefetcher name, and the mem telemetry block.
  2. Each level block (mem.l1 / mem.l2) carries numeric accesses /
     classified / shadow_hits / capacity_lines, the four miss-class
     counters, and the accounting adds up: the classes sum exactly to
     classified, classified <= accesses, and the reuse histogram's
     sample count never exceeds accesses.
  3. The set-pressure block is well formed: totals are numeric, every
     top entry's set index is inside [0, count), its demand_share is in
     [0, 1], and per-set evictions never exceed that set's fills.
  4. The pollution block's per-level attributed/unattributed counters
     sum to that level's pollution class count, and every attribution
     pair carries a valid level and a positive count.
  5. The per-PC table and queue-depth timeline are structurally sound:
     PC rows have numeric access/miss counters with l1_misses <=
     accesses, timeline samples carry non-decreasing access positions.

Exit 0 and a one-line summary on success; exit 1 with the first few
violations otherwise.

Usage: python3 tools/check_mem_json.py MEM.json
"""

import json
import sys

CLASSES = ("compulsory", "pollution", "conflict", "capacity")

LEVEL_KEYS = ("accesses", "classified", "shadow_hits", "capacity_lines")

TIMELINE_KEYS = ("access", "cycle", "l1_mshr", "l2_mshr", "dram_backlog")


def is_num(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_level(name, level, errors):
    """Validate one mem.l1/mem.l2 block; returns its pollution count."""
    if not isinstance(level, dict):
        errors.append(f"mem.{name} missing")
        return 0
    for key in LEVEL_KEYS:
        if not is_num(level.get(key)):
            errors.append(f"mem.{name}.{key} missing or non-numeric")
    classes = level.get("classes")
    if not isinstance(classes, dict):
        errors.append(f"mem.{name}.classes missing")
        return 0
    total = 0
    for cls in CLASSES:
        if not is_num(classes.get(cls)):
            errors.append(f"mem.{name}.classes.{cls} missing or "
                          f"non-numeric")
            return 0
        total += classes[cls]
    if is_num(level.get("classified")):
        if total != level["classified"]:
            errors.append(f"mem.{name}: classes sum {total} != "
                          f"classified {level['classified']}")
        if is_num(level.get("accesses")) and \
                level["classified"] > level["accesses"]:
            errors.append(f"mem.{name}: classified exceeds accesses")
    reuse = level.get("reuse")
    if not isinstance(reuse, dict) or not is_num(reuse.get("count")):
        errors.append(f"mem.{name}.reuse missing or malformed")
    elif is_num(level.get("accesses")) and \
            reuse["count"] > level["accesses"]:
        errors.append(f"mem.{name}: reuse samples exceed accesses")

    sets = level.get("sets")
    if not isinstance(sets, dict):
        errors.append(f"mem.{name}.sets missing")
    else:
        for key in ("count", "fills_demand", "fills_prefetch",
                    "evictions"):
            if not is_num(sets.get(key)):
                errors.append(f"mem.{name}.sets.{key} missing or "
                              f"non-numeric")
        for n, top in enumerate(sets.get("top", [])):
            if not is_num(top.get("set")) or not (
                    is_num(sets.get("count"))
                    and 0 <= top["set"] < sets["count"]):
                errors.append(f"mem.{name}.sets.top[{n}]: set index "
                              f"{top.get('set')!r} out of range")
            share = top.get("demand_share")
            if not is_num(share) or not 0.0 <= share <= 1.0:
                errors.append(f"mem.{name}.sets.top[{n}]: demand_share "
                              f"{share!r} outside [0, 1]")
            if all(is_num(top.get(k)) for k in
                   ("evictions", "fills_demand", "fills_prefetch")):
                fills = top["fills_demand"] + top["fills_prefetch"]
                if top["evictions"] > fills:
                    errors.append(f"mem.{name}.sets.top[{n}]: "
                                  f"evictions exceed fills")
    return classes["pollution"]


def check(path):
    errors = []
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"], 0

    if not isinstance(doc, dict):
        return ["top level is not a JSON object"], 0
    if doc.get("schema") != "csp-mem-v1":
        errors.append(f"schema {doc.get('schema')!r} != 'csp-mem-v1'")
    manifest = doc.get("manifest")
    if not isinstance(manifest, dict):
        errors.append("missing embedded run manifest")
    elif manifest.get("schema") != "csp-run-manifest-v1":
        errors.append(f"manifest schema {manifest.get('schema')!r}")
    if not isinstance(doc.get("prefetcher"), str):
        errors.append("missing prefetcher name")

    mem = doc.get("mem")
    if not isinstance(mem, dict):
        return errors + ["missing mem telemetry block"], 0
    for key in ("interval", "accesses"):
        if not is_num(mem.get(key)):
            errors.append(f"mem.{key} missing or non-numeric")

    pollution_classified = {}
    for name in ("l1", "l2"):
        pollution_classified[name] = check_level(name, mem.get(name),
                                                 errors)

    pollution = mem.get("pollution")
    if not isinstance(pollution, dict):
        errors.append("mem.pollution missing")
    else:
        for name in ("l1", "l2"):
            level = pollution.get(name)
            if not isinstance(level, dict) or not all(
                    is_num(level.get(k))
                    for k in ("attributed", "unattributed")):
                errors.append(f"mem.pollution.{name} malformed")
                continue
            total = level["attributed"] + level["unattributed"]
            if total != pollution_classified[name]:
                errors.append(
                    f"mem.pollution.{name}: attributed + unattributed "
                    f"{total} != pollution class "
                    f"{pollution_classified[name]}")
        for n, pair in enumerate(pollution.get("pairs", [])):
            if pair.get("level") not in (1, 2):
                errors.append(f"mem.pollution.pairs[{n}]: bad level "
                              f"{pair.get('level')!r}")
            if not is_num(pair.get("count")) or pair["count"] <= 0:
                errors.append(f"mem.pollution.pairs[{n}]: bad count "
                              f"{pair.get('count')!r}")
            for key in ("issuer_pc", "demand_pc"):
                if not isinstance(pair.get(key), str):
                    errors.append(f"mem.pollution.pairs[{n}]: missing "
                                  f"{key}")

    for n, pc in enumerate(mem.get("pc", [])):
        if not isinstance(pc.get("pc"), str):
            errors.append(f"mem.pc[{n}]: missing pc")
        if not all(is_num(pc.get(k))
                   for k in ("accesses", "l1_misses", "l2_misses")):
            errors.append(f"mem.pc[{n}]: non-numeric counters")
        elif pc["l1_misses"] > pc["accesses"]:
            errors.append(f"mem.pc[{n}]: l1_misses exceed accesses")

    shadow = mem.get("shadow")
    if not isinstance(shadow, dict) or not all(
            is_num(shadow.get(k))
            for k in ("compactions", "l1_live_lines", "l2_live_lines")):
        errors.append("mem.shadow missing or malformed")

    timeline = mem.get("timeline")
    if not isinstance(timeline, list):
        errors.append("mem.timeline is not an array")
        timeline = []
    last_access = -1
    for n, sample in enumerate(timeline):
        missing = [k for k in TIMELINE_KEYS
                   if not is_num(sample.get(k))]
        if missing:
            errors.append(f"mem.timeline[{n}]: missing {missing}")
            continue
        if sample["access"] < last_access:
            errors.append(f"mem.timeline[{n}]: access position "
                          f"{sample['access']} decreased")
        last_access = sample["access"]

    classified = sum(pollution_classified.values())
    return errors, (mem.get("accesses", 0), classified, len(timeline))


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    errors, summary = check(path)
    if errors:
        for err in errors[:20]:
            print(f"FAIL {path}: {err}", file=sys.stderr)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    accesses, pollution, samples = summary
    print(f"OK {path}: {accesses} accesses, {pollution} pollution "
          f"misses, {samples} timeline samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())
