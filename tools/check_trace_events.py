#!/usr/bin/env python3
"""Validate a cspsim --trace-events file against the Chrome trace-event
schema subset the simulator emits, so CI catches a malformed stream
before anyone drags it into Perfetto.

Checks, in order:

  1. The file parses as JSON and has the object form
     {"displayTimeUnit": "ms", "traceEvents": [...]}.
  2. Every event carries the required fields for its phase:
       M       metadata (process_name / thread_name)
       b / e   async lifecycle spans (cat, id, ts, pid, tid)
       i       instants (ts, scope "t")
       C       counter samples (ts, numeric args)
  3. Async begin/end events balance per (cat, id): every "e" closes an
     open "b", and any span still open at EOF is an error (the writer
     must end Useless spans at finish()).
  4. Timestamps are non-negative and counters' args are numeric.
  5. Known counter tracks carry exactly their expected series: the
     "bandit" track {epsilon, accuracy}, the learning observatory's
     "policy" track {epsilon, entropy}, and the memory observatory's
     "mem.l1" / "mem.l2" miss-class tracks {compulsory, capacity,
     conflict, pollution}.

--require NAME (repeatable) additionally fails the check when the
named counter track never appears — CI uses it to assert that a
--learn-out run actually produced the "policy" track. A required name
is also satisfied by any "NAME."-prefixed track, so --require mem
asserts the mem.l1/mem.l2 miss-class tracks of a --mem-out run.

Exit 0 and a one-line summary on success; exit 1 with the first few
violations otherwise.

Usage: python3 tools/check_trace_events.py TRACE.json [--require NAME]
"""

import collections
import json
import sys

REQUIRED_BY_PHASE = {
    "M": ("name", "ph", "pid"),
    "b": ("name", "cat", "ph", "id", "ts", "pid", "tid"),
    "e": ("name", "cat", "ph", "id", "ts", "pid", "tid"),
    "i": ("name", "ph", "ts", "pid", "tid", "s"),
    "C": ("name", "ph", "ts", "pid", "args"),
}

# Counter tracks with a fixed series set: every sample must carry
# exactly these arg keys (a renamed series would silently produce an
# empty Perfetto track).
COUNTER_TRACK_ARGS = {
    "bandit": {"epsilon", "accuracy"},
    "policy": {"epsilon", "entropy"},
    "mem.l1": {"compulsory", "capacity", "conflict", "pollution"},
    "mem.l2": {"compulsory", "capacity", "conflict", "pollution"},
}


def check(path, require_counters=()):
    errors = []
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"], {}

    if not isinstance(doc, dict):
        return ["top level is not a JSON object"], {}
    if doc.get("displayTimeUnit") != "ms":
        errors.append("missing displayTimeUnit=ms")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return errors + ["traceEvents is not an array"], {}

    open_spans = collections.Counter()
    phases = collections.Counter()
    counter_tracks = collections.Counter()
    for n, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {n}: not an object")
            continue
        ph = ev.get("ph")
        phases[ph] += 1
        required = REQUIRED_BY_PHASE.get(ph)
        if required is None:
            errors.append(f"event {n}: unexpected phase {ph!r}")
            continue
        missing = [k for k in required if k not in ev]
        if missing:
            errors.append(f"event {n} (ph={ph}): missing {missing}")
            continue
        if "ts" in ev and not (isinstance(ev["ts"], (int, float))
                               and ev["ts"] >= 0):
            errors.append(f"event {n}: bad ts {ev['ts']!r}")
        if ph == "b":
            open_spans[(ev["cat"], ev["id"])] += 1
        elif ph == "e":
            key = (ev["cat"], ev["id"])
            if open_spans[key] <= 0:
                errors.append(f"event {n}: 'e' with no open 'b' "
                              f"for cat={key[0]} id={key[1]}")
            else:
                open_spans[key] -= 1
        elif ph == "i" and ev["s"] != "t":
            errors.append(f"event {n}: instant scope {ev['s']!r} != 't'")
        elif ph == "C":
            bad = {k: v for k, v in ev["args"].items()
                   if not isinstance(v, (int, float))}
            if bad:
                errors.append(f"event {n}: non-numeric counter args {bad}")
            counter_tracks[ev["name"]] += 1
            expected = COUNTER_TRACK_ARGS.get(ev["name"])
            if expected is not None and set(ev["args"]) != expected:
                errors.append(
                    f"event {n}: counter {ev['name']!r} args "
                    f"{sorted(ev['args'])} != {sorted(expected)}")

    unclosed = sum(open_spans.values())
    if unclosed:
        errors.append(f"{unclosed} async span(s) never closed")
    if phases["b"] == 0:
        errors.append("no lifecycle spans (ph=b) in trace")
    for name in require_counters:
        prefixed = name + "."
        if counter_tracks[name] == 0 and not any(
                track.startswith(prefixed) and count > 0
                for track, count in counter_tracks.items()):
            errors.append(f"required counter track {name!r} never "
                          f"appeared")
    return errors, phases


def main():
    args = sys.argv[1:]
    path = None
    require = []
    while args:
        arg = args.pop(0)
        if arg == "--require":
            if not args:
                print("--require needs a counter-track name",
                      file=sys.stderr)
                return 2
            require.append(args.pop(0))
        elif path is None:
            path = arg
        else:
            print(__doc__, file=sys.stderr)
            return 2
    if path is None:
        print(__doc__, file=sys.stderr)
        return 2
    errors, phases = check(path, require)
    if errors:
        for err in errors[:20]:
            print(f"FAIL {path}: {err}", file=sys.stderr)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more", file=sys.stderr)
        return 1
    total = sum(phases.values())
    summary = ", ".join(f"{ph}={phases[ph]}"
                        for ph in ("M", "b", "e", "i", "C") if phases[ph])
    print(f"OK {path}: {total} events ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
