/**
 * @file
 * cspdiff — compare two run artefacts (stats JSON, sweep/interval CSV,
 * bench scorecard JSON) and classify every delta as correctness drift,
 * a timing excursion, or a provenance difference.
 *
 * Exit codes (CI contract):
 *   0  no correctness drift, timing within the band
 *   1  a must-be-bit-identical stat differs (or --require-same-input
 *      failed)
 *   2  a timing/throughput stat moved outside the tolerance band
 *   3  usage or file/format error
 *
 * Examples:
 *   cspdiff results/baseline/list-context.json /tmp/new.json
 *   cspdiff old.csv new.csv --timing-tol 0.10
 *   cspdiff a.json b.json --float-tol 1e-6 --report report.txt
 */

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "diff/csp_diff.h"

namespace {

void
usage()
{
    std::cout <<
        "usage: cspdiff A B [options]\n"
        "  A, B                 run artefacts: stats JSON, sweep or\n"
        "                       interval CSV, or bench scorecard JSON\n"
        "  --timing-tol F       relative band for timing/throughput\n"
        "                       stats (default 0.05 = 5%)\n"
        "  --float-tol F        relative tolerance for non-integer\n"
        "                       correctness stats (default 0 =\n"
        "                       bit-identical; pass 1e-6 when A and B\n"
        "                       come from different compilers)\n"
        "  --lax-timing         report timing excursions but never\n"
        "                       fail on them (cross-machine diffs)\n"
        "  --require-same-input fail when config/trace digests or the\n"
        "                       seed differ between the manifests\n"
        "  --max-rows N         findings shown in the report "
        "(default 40)\n"
        "  --report FILE        also write the report to FILE\n"
        "                       (parent directories are created)\n";
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path_a;
    std::string path_b;
    std::string report_path;
    std::size_t max_rows = 40;
    csp::diff::DiffOptions options;

    const auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "cspdiff: missing value for " << argv[i]
                      << "\n";
            std::exit(3);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--timing-tol") {
            options.timing_tolerance = std::atof(need_value(i));
        } else if (arg == "--float-tol") {
            options.float_tolerance = std::atof(need_value(i));
        } else if (arg == "--lax-timing") {
            options.fail_on_timing = false;
        } else if (arg == "--require-same-input") {
            options.require_same_input = true;
        } else if (arg == "--max-rows") {
            max_rows = std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--report") {
            report_path = need_value(i);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "cspdiff: unknown option " << arg
                      << " (try --help)\n";
            return 3;
        } else if (path_a.empty()) {
            path_a = arg;
        } else if (path_b.empty()) {
            path_b = arg;
        } else {
            std::cerr << "cspdiff: too many positional arguments\n";
            return 3;
        }
    }
    if (path_a.empty() || path_b.empty()) {
        usage();
        return 3;
    }

    std::string text_a;
    std::string text_b;
    if (!readFile(path_a, text_a)) {
        std::cerr << "cspdiff: cannot read " << path_a << "\n";
        return 3;
    }
    if (!readFile(path_b, text_b)) {
        std::cerr << "cspdiff: cannot read " << path_b << "\n";
        return 3;
    }

    csp::diff::FlatDoc doc_a;
    csp::diff::FlatDoc doc_b;
    std::string error;
    if (!csp::diff::parseFlat(text_a, doc_a, &error)) {
        std::cerr << "cspdiff: " << path_a << ": " << error << "\n";
        return 3;
    }
    if (!csp::diff::parseFlat(text_b, doc_b, &error)) {
        std::cerr << "cspdiff: " << path_b << ": " << error << "\n";
        return 3;
    }

    const csp::diff::DiffResult result =
        csp::diff::diffDocs(doc_a, doc_b, options);
    std::ostringstream report;
    report << "A: " << path_a << "\nB: " << path_b << "\n";
    result.writeReport(report, max_rows);
    std::cout << report.str();

    if (!report_path.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(report_path).parent_path();
        std::error_code ec;
        if (!parent.empty())
            std::filesystem::create_directories(parent, ec);
        std::ofstream out(report_path);
        if (!out) {
            std::cerr << "cspdiff: cannot write " << report_path
                      << "\n";
            return 3;
        }
        out << report.str();
    }
    return result.exitCode();
}
