/**
 * @file
 * csplearn — render learning curves, convergence diagnostics and
 * CST-health tables from the learn.json files cspsim writes under
 * --learn-out. With two files, appends a side-by-side comparison of
 * the final learning states (e.g. two seeds, or before/after a
 * policy change).
 *
 * Exit codes:
 *   0  report rendered
 *   3  usage or file/format error
 *
 * Examples:
 *   csplearn learn.json
 *   csplearn base/learn.json new/learn.json --report report.txt
 *   csplearn learn.json --rows 32 --contexts 16
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "diff/csp_diff.h"
#include "diff/learn_report.h"

namespace {

void
usage()
{
    std::cout <<
        "usage: csplearn A [B] [options]\n"
        "  A [B]            learn.json files from cspsim --learn-out\n"
        "                   (two files appends a comparison section)\n"
        "  --rows N         learning-curve rows shown (default 16)\n"
        "  --contexts N     top contexts shown (default 8)\n"
        "  --report FILE    also write the report to FILE (parent\n"
        "                   directories are created)\n";
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

bool
loadLearnDoc(const std::string &path, csp::diff::FlatDoc &doc)
{
    std::string content;
    if (!readFile(path, content)) {
        std::cerr << "csplearn: cannot read " << path << "\n";
        return false;
    }
    std::string error;
    if (!csp::diff::parseJsonFlat(content, doc, &error)) {
        std::cerr << "csplearn: " << path << ": " << error << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path_a;
    std::string path_b;
    std::string report_path;
    csp::diff::LearnReportOptions options;

    const auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "csplearn: missing value for " << argv[i]
                      << "\n";
            std::exit(3);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--rows") {
            options.max_rows = std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--contexts") {
            options.max_contexts =
                std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--report") {
            report_path = need_value(i);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "csplearn: unknown option " << arg
                      << " (try --help)\n";
            return 3;
        } else if (path_a.empty()) {
            path_a = arg;
        } else if (path_b.empty()) {
            path_b = arg;
        } else {
            std::cerr << "csplearn: too many positional arguments\n";
            return 3;
        }
    }
    if (path_a.empty()) {
        usage();
        return 3;
    }

    csp::diff::FlatDoc doc_a;
    csp::diff::FlatDoc doc_b;
    if (!loadLearnDoc(path_a, doc_a))
        return 3;
    const bool have_b = !path_b.empty();
    if (have_b && !loadLearnDoc(path_b, doc_b))
        return 3;

    std::ostringstream report;
    std::string error;
    if (!csp::diff::renderLearnReport(doc_a, path_a,
                                      have_b ? &doc_b : nullptr,
                                      path_b, report, &error,
                                      options)) {
        std::cerr << "csplearn: " << error << "\n";
        return 3;
    }
    std::cout << report.str();

    if (!report_path.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(report_path).parent_path();
        std::error_code ec;
        if (!parent.empty())
            std::filesystem::create_directories(parent, ec);
        std::ofstream out(report_path);
        if (!out) {
            std::cerr << "csplearn: cannot write " << report_path
                      << "\n";
            return 3;
        }
        out << report.str();
    }
    return 0;
}
