/**
 * @file
 * cspmem — render miss-taxonomy, set-pressure, pollution-attribution
 * and queue-depth tables from the mem.json files cspsim writes under
 * --mem-out. With two files, appends a side-by-side comparison of the
 * two miss taxonomies (e.g. context vs stride prefetching on the same
 * workload — "where did the misses go").
 *
 * Exit codes:
 *   0  report rendered
 *   3  usage or file/format error
 *
 * Examples:
 *   cspmem mem.json
 *   cspmem context/mem.json stride/mem.json --report report.txt
 *   cspmem mem.json --sets 8 --pairs 16
 */

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "diff/csp_diff.h"
#include "diff/mem_report.h"

namespace {

void
usage()
{
    std::cout <<
        "usage: cspmem A [B] [options]\n"
        "  A [B]            mem.json files from cspsim --mem-out\n"
        "                   (two files appends a comparison section)\n"
        "  --sets N         hot sets shown per level (default 4)\n"
        "  --pairs N        pollution pairs shown (default 8)\n"
        "  --pcs N          demand PCs shown (default 8)\n"
        "  --timeline N     timeline rows shown (default 8)\n"
        "  --report FILE    also write the report to FILE (parent\n"
        "                   directories are created)\n";
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

bool
loadMemDoc(const std::string &path, csp::diff::FlatDoc &doc)
{
    std::string content;
    if (!readFile(path, content)) {
        std::cerr << "cspmem: cannot read " << path << "\n";
        return false;
    }
    std::string error;
    if (!csp::diff::parseJsonFlat(content, doc, &error)) {
        std::cerr << "cspmem: " << path << ": " << error << "\n";
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path_a;
    std::string path_b;
    std::string report_path;
    csp::diff::MemReportOptions options;

    const auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "cspmem: missing value for " << argv[i]
                      << "\n";
            std::exit(3);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--sets") {
            options.max_sets = std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--pairs") {
            options.max_pairs =
                std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--pcs") {
            options.max_pcs = std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--timeline") {
            options.max_timeline =
                std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--report") {
            report_path = need_value(i);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "cspmem: unknown option " << arg
                      << " (try --help)\n";
            return 3;
        } else if (path_a.empty()) {
            path_a = arg;
        } else if (path_b.empty()) {
            path_b = arg;
        } else {
            std::cerr << "cspmem: too many positional arguments\n";
            return 3;
        }
    }
    if (path_a.empty()) {
        usage();
        return 3;
    }

    csp::diff::FlatDoc doc_a;
    csp::diff::FlatDoc doc_b;
    if (!loadMemDoc(path_a, doc_a))
        return 3;
    const bool have_b = !path_b.empty();
    if (have_b && !loadMemDoc(path_b, doc_b))
        return 3;

    std::ostringstream report;
    std::string error;
    if (!csp::diff::renderMemReport(doc_a, path_a,
                                    have_b ? &doc_b : nullptr, path_b,
                                    report, &error, options)) {
        std::cerr << "cspmem: " << error << "\n";
        return 3;
    }
    std::cout << report.str();

    if (!report_path.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(report_path).parent_path();
        std::error_code ec;
        if (!parent.empty())
            std::filesystem::create_directories(parent, ec);
        std::ofstream out(report_path);
        if (!out) {
            std::cerr << "cspmem: cannot write " << report_path
                      << "\n";
            return 3;
        }
        out << report.str();
    }
    return 0;
}
