/**
 * @file
 * cspmerge — reassemble sharded sweep artefacts.
 *
 * Each `cspsim --workloads ... --shard I/N --sweep-out shardI.json`
 * process owns a disjoint subset of the sweep grid. cspmerge folds the
 * shard artefacts back into one complete sweep: the merged cell CSV is
 * byte-identical to an unsharded run of the same sweep (the
 * determinism contract makes cell stats independent of which process
 * computed them), and the merge refuses shards whose manifests
 * disagree on what was swept.
 *
 * With --journal (one per shard), also merges the shards'
 * csp-events-v1 journals (cspsim --events-out) into one time-ordered
 * journal — refusing journals whose sweep_start identity does not
 * match the artefacts being merged.
 *
 * Examples:
 *   cspmerge shard0.json shard1.json shard2.json
 *   cspmerge shards/*.json --out merged.json --csv merged.csv
 *   cspmerge shards/*.json --journal s0.jsonl --journal s1.jsonl \
 *            --events-out merged.jsonl
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/logging.h"
#include "diff/sweep_report.h"
#include "sim/sweep_io.h"

namespace {

using namespace csp;

void
usage()
{
    std::cout <<
        "usage: cspmerge SHARD.json... [options]\n"
        "  --out FILE         write the merged csp-sweep-v2 artefact\n"
        "  --csv FILE         write the merged cell CSV (byte-identical\n"
        "                     to an unsharded run's stdout CSV)\n"
        "  --journal FILE     a shard's csp-events-v1 journal (repeat\n"
        "                     once per shard; from cspsim --events-out)\n"
        "  --events-out FILE  write the merged time-ordered journal\n"
        "                     (render with csptop)\n"
        "Without --csv the merged CSV goes to stdout.\n"
        "Exits 1 when shards disagree on what was swept, a cell is\n"
        "owned twice, coverage is incomplete, or a journal's identity\n"
        "does not match the artefacts.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> shard_paths;
    std::vector<std::string> journal_paths;
    std::string out_path;
    std::string csv_path;
    std::string events_out_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&](int &j) -> const char * {
            if (j + 1 >= argc)
                fatal("missing value for %s", argv[j]);
            return argv[++j];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--out") {
            out_path = need_value(i);
        } else if (arg == "--csv") {
            csv_path = need_value(i);
        } else if (arg == "--journal") {
            journal_paths.push_back(need_value(i));
        } else if (arg == "--events-out") {
            events_out_path = need_value(i);
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option: %s (try --help)", arg.c_str());
        } else {
            shard_paths.push_back(arg);
        }
    }
    if (shard_paths.empty()) {
        usage();
        return 1;
    }

    std::vector<sim::SweepResult> shards;
    shards.reserve(shard_paths.size());
    for (const std::string &path : shard_paths) {
        sim::SweepResult shard;
        std::string error;
        if (!sim::readSweepJson(path, shard, &error))
            fatal("%s: %s", path.c_str(), error.c_str());
        shards.push_back(std::move(shard));
    }

    sim::SweepResult merged;
    std::string error;
    if (!sim::mergeSweeps(shards, merged, &error))
        fatal("%s", error.c_str());

    if (!journal_paths.empty() || !events_out_path.empty()) {
        if (journal_paths.empty() || events_out_path.empty()) {
            fatal("--journal and --events-out go together (one "
                  "--journal per shard, one --events-out for the "
                  "merged journal)");
        }
        // The artefacts are the source of truth for what was swept;
        // the journals must agree with them before being merged.
        diff::JournalIdentity expect;
        expect.config_digest = merged.manifest.config_digest;
        expect.seed = merged.manifest.seed;
        expect.scale = merged.manifest.scale;
        expect.placement = merged.manifest.placement;
        expect.workloads = merged.manifest.workloads;
        expect.prefetchers = merged.manifest.prefetchers;
        expect.shard_count = shards.front().shard_count;
        std::ostringstream journal;
        if (!diff::mergeJournals(journal_paths, &expect, journal,
                                 &error)) {
            fatal("%s", error.c_str());
        }
        std::ofstream events(events_out_path, std::ios::binary);
        if (!events)
            fatal("cannot write %s", events_out_path.c_str());
        events << journal.str();
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal("cannot write %s", out_path.c_str());
        sim::writeSweepJson(out, merged);
    }
    if (!csv_path.empty()) {
        std::ofstream csv(csv_path);
        if (!csv)
            fatal("cannot write %s", csv_path.c_str());
        sim::writeSweepCsv(csv, merged);
    } else {
        sim::writeSweepCsv(std::cout, merged);
    }
    return 0;
}
