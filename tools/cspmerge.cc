/**
 * @file
 * cspmerge — reassemble sharded sweep artefacts.
 *
 * Each `cspsim --workloads ... --shard I/N --sweep-out shardI.json`
 * process owns a disjoint subset of the sweep grid. cspmerge folds the
 * shard artefacts back into one complete sweep: the merged cell CSV is
 * byte-identical to an unsharded run of the same sweep (the
 * determinism contract makes cell stats independent of which process
 * computed them), and the merge refuses shards whose manifests
 * disagree on what was swept.
 *
 * Examples:
 *   cspmerge shard0.json shard1.json shard2.json
 *   cspmerge shards/*.json --out merged.json --csv merged.csv
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/logging.h"
#include "sim/sweep_io.h"

namespace {

using namespace csp;

void
usage()
{
    std::cout <<
        "usage: cspmerge SHARD.json... [options]\n"
        "  --out FILE   write the merged csp-sweep-v1 artefact\n"
        "  --csv FILE   write the merged cell CSV (byte-identical to\n"
        "               an unsharded run's stdout CSV)\n"
        "Without --csv the merged CSV goes to stdout.\n"
        "Exits 1 when shards disagree on what was swept, a cell is\n"
        "owned twice, or coverage is incomplete.\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> shard_paths;
    std::string out_path;
    std::string csv_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto need_value = [&](int &j) -> const char * {
            if (j + 1 >= argc)
                fatal("missing value for %s", argv[j]);
            return argv[++j];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--out") {
            out_path = need_value(i);
        } else if (arg == "--csv") {
            csv_path = need_value(i);
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option: %s (try --help)", arg.c_str());
        } else {
            shard_paths.push_back(arg);
        }
    }
    if (shard_paths.empty()) {
        usage();
        return 1;
    }

    std::vector<sim::SweepResult> shards;
    shards.reserve(shard_paths.size());
    for (const std::string &path : shard_paths) {
        sim::SweepResult shard;
        std::string error;
        if (!sim::readSweepJson(path, shard, &error))
            fatal("%s: %s", path.c_str(), error.c_str());
        shards.push_back(std::move(shard));
    }

    sim::SweepResult merged;
    std::string error;
    if (!sim::mergeSweeps(shards, merged, &error))
        fatal("%s", error.c_str());

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal("cannot write %s", out_path.c_str());
        sim::writeSweepJson(out, merged);
    }
    if (!csv_path.empty()) {
        std::ofstream csv(csv_path);
        if (!csv)
            fatal("cannot write %s", csv_path.c_str());
        sim::writeSweepCsv(csv, merged);
    } else {
        sim::writeSweepCsv(std::cout, merged);
    }
    return 0;
}
