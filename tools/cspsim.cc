/**
 * @file
 * cspsim — command-line driver for the simulator.
 *
 * Runs any registered workload against any prefetcher (or the paper's
 * whole lineup), with the common configuration knobs exposed as flags,
 * optional trace caching on disk, and table or CSV output.
 *
 * Examples:
 *   cspsim --list
 *   cspsim --workload list --prefetcher all
 *   cspsim --workload mcf --prefetcher context --scale 1000000
 *   cspsim --workload graph500-list --save-trace g.trace
 *   cspsim --load-trace g.trace --prefetcher sms --csv
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/logging.h"
#include "core/profiling.h"
#include "core/run_manifest.h"
#include "core/thread_pool.h"
#include "obs/learning.h"
#include "obs/mem_recorder.h"
#include "obs/run_observer.h"
#include "obs/trace_events.h"
#include "prefetch/context/context_prefetcher.h"
#include "sim/experiment.h"
#include "sim/result_cache.h"
#include "sim/simulator.h"
#include "sim/sweep_events.h"
#include "sim/sweep_io.h"
#include "sim/table.h"
#include "trace/trace_io.h"
#include "workloads/registry.h"

namespace {

using namespace csp;

struct Options
{
    std::string workload;
    std::string prefetcher = "context";
    std::uint64_t scale = 250000;
    std::uint64_t seed = 1;
    runtime::Placement placement = runtime::Placement::Randomized;
    std::string save_trace;
    std::string load_trace;
    bool csv = false;
    bool json = false;
    bool list = false;
    bool describe = false;
    bool verbose = false;
    bool profile = false;
    bool print_manifest = false;
    unsigned jobs = 0; ///< 0 = auto (CSP_JOBS, else all cores)
    std::string stats_out;
    std::string stats_csv;
    std::string stats_filter;
    std::uint64_t stats_interval = 0;
    std::string autopsy_out;
    std::string trace_events;
    std::uint64_t trace_sample = 1;
    std::string learn_out;
    std::uint64_t learn_snapshot_every = 0; ///< 0 = auto (~32/run)
    std::string mem_out;
    std::uint64_t mem_interval = 0; ///< 0 = auto (~64 samples/run)
    // Sweep-service mode (--workloads): cached, shardable grid runs.
    std::string sweep_workloads;
    std::string sweep_out;
    std::string events_out;
    unsigned shard_index = 0;
    unsigned shard_count = 1;
    bool no_result_cache = false;
    bool no_trace_cache = false;
    std::string result_cache_dir;
    std::string trace_cache_dir;
    std::uint64_t cache_max_bytes = 0; ///< 0 = env, then unbounded
    bool cache_max_bytes_set = false;
    SystemConfig config;
};

void
usage()
{
    std::cout <<
        "usage: cspsim [options]\n"
        "  --list                   list registered workloads\n"
        "  --describe               print the system configuration\n"
        "  --workload NAME          workload to run\n"
        "  --prefetcher NAME|all    one of: none stride ghb-gdc ghb-pcdc\n"
        "                           sms markov jump next-line context;\n"
        "                           'all' = the paper lineup (default:\n"
        "                           context)\n"
        "  --scale N                target memory accesses (default "
        "250000)\n"
        "  --seed N                 workload + learner seed\n"
        "  --placement seq|rand     heap placement for workloads\n"
        "  --save-trace FILE        write the generated trace and "
        "exit\n"
        "  --load-trace FILE        simulate a saved trace instead of "
        "generating\n"
        "  --csv                    CSV instead of aligned table\n"
        "  --json                   one JSON object per prefetcher\n"
        "  --jobs N                 worker threads for multi-prefetcher\n"
        "                           runs (default: CSP_JOBS, else all\n"
        "                           cores); results are bit-identical\n"
        "                           for any N\n"
        "  --stats-out FILE         full hierarchical stats as JSON\n"
        "  --stats-interval N       sample interval stats every N\n"
        "                           instructions into a CSV time-series\n"
        "  --stats-csv FILE         interval CSV path (default: derived\n"
        "                           from --stats-out)\n"
        "  --stats-filter PREFIX    keep only stats under the dotted\n"
        "                           prefix (e.g. context.bandit)\n"
        "  --autopsy-out FILE       per-prefetch lifecycle autopsy\n"
        "                           tables (timely/late/early/redundant/\n"
        "                           useless/dropped + per-PC attribution);\n"
        "                           writes the FILE stem as .csv and\n"
        "                           .json, tagged per prefetcher for\n"
        "                           multi-prefetcher runs\n"
        "  --trace-events FILE      Chrome trace-event JSON timeline\n"
        "                           (open in Perfetto / chrome://tracing):\n"
        "                           prefetch lifecycles as async spans,\n"
        "                           demand misses + RL rewards as instant\n"
        "                           events, MSHR occupancy counters\n"
        "  --trace-sample N         emit 1 in N lifecycle spans and\n"
        "                           instant events (default 1 = all)\n"
        "  --learn-out FILE         periodic learning-state snapshots\n"
        "                           (policy epsilon/accuracy/entropy,\n"
        "                           CST health, top contexts with arm\n"
        "                           scores) as learn.json, manifest\n"
        "                           embedded; render with csplearn,\n"
        "                           diff with cspdiff\n"
        "  --learn-snapshot-every N snapshot the learning state every N\n"
        "                           prefetcher lookups (default 0 =\n"
        "                           auto, about 32 per run)\n"
        "  --mem-out FILE           memory-hierarchy observatory export\n"
        "                           (3C+pollution miss taxonomy from\n"
        "                           shadow models, reuse-distance and\n"
        "                           set-pressure telemetry, MSHR/DRAM\n"
        "                           queue timeline) as mem.json,\n"
        "                           manifest embedded; render with\n"
        "                           cspmem, diff with cspdiff\n"
        "  --mem-interval N         sample MSHR/DRAM queue depths every\n"
        "                           N demand accesses (default 0 =\n"
        "                           auto, about 64 samples per run)\n"
        "  --profile                attribute wall-clock to simulator\n"
        "                           phases (trace-gen, replay, train/\n"
        "                           predict, memory, stats flush) under\n"
        "                           prof.* in --stats-out, plus a\n"
        "                           summary on stderr; off = zero-cost\n"
        "  --workloads LIST         sweep mode: run every workload in\n"
        "                           LIST (comma-separated, or one of\n"
        "                           all/ubench/spec/irregular) against\n"
        "                           every --prefetcher; prints the cell\n"
        "                           matrix as CSV on stdout. Cells are\n"
        "                           memoized in the result cache and\n"
        "                           traces in the trace cache, so a\n"
        "                           repeated sweep does zero simulation\n"
        "                           work with byte-identical output\n"
        "  --sweep-out FILE         write the sweep artefact (manifest,\n"
        "                           cache/shard accounting, cells) as\n"
        "                           csp-sweep-v2 JSON; shards feed these\n"
        "                           files to cspmerge\n"
        "  --events-out FILE        append-only csp-events-v1 JSONL\n"
        "                           journal of the sweep (trace gen,\n"
        "                           per-cell start/end with cached-vs-\n"
        "                           simulated attribution, heartbeats,\n"
        "                           roll-ups); watch live or post-hoc\n"
        "                           with csptop, merge shard journals\n"
        "                           with cspmerge --journal. Side-band:\n"
        "                           results are byte-identical with the\n"
        "                           journal on or off\n"
        "  --cache-max-bytes SIZE   bound the result cache: after the\n"
        "                           sweep, evict least-recently-used\n"
        "                           entries until the cache fits SIZE\n"
        "                           (K/M/G/T suffixes, powers of 1024;\n"
        "                           default $CSP_CACHE_MAX_BYTES, else\n"
        "                           unbounded)\n"
        "  --shard I/N              own only every N-th cell (rank I) of\n"
        "                           the sweep's longest-first schedule;\n"
        "                           N independent shard processes cover\n"
        "                           the grid and cspmerge reassembles\n"
        "                           bit-identically\n"
        "  --no-result-cache        always simulate (or set\n"
        "                           CSP_RESULT_CACHE=0)\n"
        "  --no-trace-cache         always regenerate traces (or set\n"
        "                           CSP_TRACE_CACHE=0)\n"
        "  --result-cache-dir DIR   result cache location (default\n"
        "                           $CSP_RESULT_CACHE_DIR, else\n"
        "                           results/cache)\n"
        "  --trace-cache DIR        trace cache location (default\n"
        "                           $CSP_TRACE_CACHE_DIR, else\n"
        "                           traces/cache)\n"
        "  --manifest               print the run-provenance manifest\n"
        "                           (build, config digest, host) as\n"
        "                           JSON and exit\n"
        "  --verbose                rate-limited progress heartbeat\n"
        "  --cst-entries N          context prefetcher CST size\n"
        "  --max-degree N           context prefetcher degree cap\n"
        "  --softmax                softmax exploration (extension)\n"
        "  --dram-latency N         DRAM latency in cycles\n";
}

std::optional<Options>
parse(int argc, char **argv)
{
    Options options;
    const auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            fatal("missing value for %s", argv[i]);
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return std::nullopt;
        } else if (arg == "--list") {
            options.list = true;
        } else if (arg == "--describe") {
            options.describe = true;
        } else if (arg == "--workload") {
            options.workload = need_value(i);
        } else if (arg == "--prefetcher") {
            options.prefetcher = need_value(i);
        } else if (arg == "--scale") {
            options.scale = std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--seed") {
            options.seed = std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--placement") {
            const std::string mode = need_value(i);
            if (mode == "seq")
                options.placement = runtime::Placement::Sequential;
            else if (mode == "rand")
                options.placement = runtime::Placement::Randomized;
            else
                fatal("unknown placement: %s", mode.c_str());
        } else if (arg == "--save-trace") {
            options.save_trace = need_value(i);
        } else if (arg == "--load-trace") {
            options.load_trace = need_value(i);
        } else if (arg == "--csv") {
            options.csv = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg == "--verbose") {
            options.verbose = true;
        } else if (arg == "--jobs") {
            options.jobs = static_cast<unsigned>(
                std::strtoul(need_value(i), nullptr, 10));
        } else if (arg == "--stats-out") {
            options.stats_out = need_value(i);
        } else if (arg == "--stats-csv") {
            options.stats_csv = need_value(i);
        } else if (arg == "--stats-filter") {
            options.stats_filter = need_value(i);
        } else if (arg == "--stats-interval") {
            options.stats_interval =
                std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--autopsy-out") {
            options.autopsy_out = need_value(i);
        } else if (arg == "--trace-events") {
            options.trace_events = need_value(i);
        } else if (arg == "--learn-out") {
            options.learn_out = need_value(i);
        } else if (arg == "--learn-snapshot-every") {
            options.learn_snapshot_every =
                std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--mem-out") {
            options.mem_out = need_value(i);
        } else if (arg == "--mem-interval") {
            options.mem_interval =
                std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--profile") {
            options.profile = true;
        } else if (arg == "--workloads") {
            options.sweep_workloads = need_value(i);
        } else if (arg == "--sweep-out") {
            options.sweep_out = need_value(i);
        } else if (arg == "--events-out") {
            options.events_out = need_value(i);
        } else if (arg == "--cache-max-bytes") {
            const char *spec = need_value(i);
            if (!sim::parseByteSize(spec, options.cache_max_bytes))
                fatal("--cache-max-bytes wants BYTES with an optional "
                      "K/M/G/T suffix, got %s", spec);
            options.cache_max_bytes_set = true;
        } else if (arg == "--shard") {
            const char *spec = need_value(i);
            if (std::sscanf(spec, "%u/%u", &options.shard_index,
                            &options.shard_count) != 2 ||
                options.shard_count == 0 ||
                options.shard_index >= options.shard_count) {
                fatal("--shard wants I/N with I < N, got %s", spec);
            }
        } else if (arg == "--no-result-cache") {
            options.no_result_cache = true;
        } else if (arg == "--no-trace-cache") {
            options.no_trace_cache = true;
        } else if (arg == "--result-cache-dir") {
            options.result_cache_dir = need_value(i);
        } else if (arg == "--trace-cache") {
            options.trace_cache_dir = need_value(i);
        } else if (arg == "--manifest") {
            options.print_manifest = true;
        } else if (arg == "--trace-sample") {
            options.trace_sample =
                std::strtoull(need_value(i), nullptr, 10);
            if (options.trace_sample == 0)
                options.trace_sample = 1;
        } else if (arg == "--cst-entries") {
            options.config.context.cst_entries = static_cast<unsigned>(
                std::strtoul(need_value(i), nullptr, 10));
        } else if (arg == "--max-degree") {
            options.config.context.max_degree = static_cast<unsigned>(
                std::strtoul(need_value(i), nullptr, 10));
        } else if (arg == "--softmax") {
            options.config.context.softmax_exploration = true;
        } else if (arg == "--dram-latency") {
            options.config.memory.dram_latency =
                std::strtoull(need_value(i), nullptr, 10);
        } else {
            fatal("unknown option: %s (try --help)", arg.c_str());
        }
    }
    options.config.seed = options.seed;
    return options;
}

std::vector<std::string>
prefetcherList(const std::string &selection)
{
    if (selection == "all")
        return sim::paperPrefetchers();
    return {selection};
}

std::vector<std::string>
sweepWorkloadList(const std::string &selection)
{
    if (selection == "all")
        return sim::allWorkloads();
    if (selection == "ubench")
        return sim::ubenchWorkloads();
    if (selection == "spec")
        return sim::specWorkloads();
    if (selection == "irregular")
        return sim::irregularWorkloads();
    std::vector<std::string> names;
    std::size_t start = 0;
    while (start < selection.size()) {
        const std::size_t comma = selection.find(',', start);
        const std::size_t end =
            comma == std::string::npos ? selection.size() : comma;
        if (end > start)
            names.push_back(selection.substr(start, end - start));
        start = end + 1;
    }
    if (names.empty())
        fatal("--workloads got an empty list");
    return names;
}

trace::TraceBuffer
obtainTrace(const Options &options)
{
    if (!options.load_trace.empty()) {
        trace::TraceBuffer buffer;
        const trace::TraceIoStatus status =
            trace::loadTraceFile(options.load_trace, buffer);
        if (status != trace::TraceIoStatus::Ok) {
            fatal("cannot load trace %s: %s",
                  options.load_trace.c_str(),
                  trace::traceIoStatusName(status));
        }
        return buffer;
    }
    if (options.workload.empty())
        fatal("--workload or --load-trace is required (see --help)");
    workloads::WorkloadParams params;
    params.scale = options.scale;
    params.seed = options.seed;
    params.placement = options.placement;
    const auto workload =
        workloads::Registry::builtin().create(options.workload);
    return workload->generate(params);
}

/** Create @p path's parent directories (fatal with a clear message on
 *  failure) so --stats-out/--autopsy-out/--trace-events/--save-trace
 *  into a fresh results directory just work. */
void
ensureParentDir(const std::string &path)
{
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
        fatal("cannot create directory %s for %s: %s",
              parent.string().c_str(), path.c_str(),
              ec.message().c_str());
    }
}

void
writeFile(const std::string &path, const std::string &content)
{
    ensureParentDir(path);
    std::ofstream out(path);
    if (!out)
        fatal("cannot write %s", path.c_str());
    out << content;
}

/** Interval-CSV path for one prefetcher: --stats-csv when given, else
 *  derived from --stats-out (stats.json -> stats.intervals.csv); with
 *  several prefetchers the name is tagged per prefetcher. */
std::string
intervalCsvPath(const Options &options, const std::string &pf_name,
                bool multi)
{
    std::string base = options.stats_csv;
    if (base.empty()) {
        base = options.stats_out;
        if (base.empty()) {
            fatal("--stats-interval needs --stats-out or "
                  "--stats-csv for the CSV path");
        }
        if (base.size() > 5 &&
            base.compare(base.size() - 5, 5, ".json") == 0) {
            base.erase(base.size() - 5);
        }
        base += multi ? "." + pf_name + ".intervals.csv"
                      : ".intervals.csv";
        return base;
    }
    if (!multi)
        return base;
    const std::size_t dot = base.rfind('.');
    if (dot == std::string::npos)
        return base + "." + pf_name;
    return base.substr(0, dot) + "." + pf_name + base.substr(dot);
}

/** FILE stem for --autopsy-out: drop a known extension, tag per
 *  prefetcher on multi-prefetcher runs; ".csv"/".json" are appended by
 *  the caller. */
std::string
autopsyStem(const std::string &path, const std::string &pf_name,
            bool multi)
{
    std::string stem = path;
    for (const char *ext : {".csv", ".json"}) {
        const std::size_t n = std::strlen(ext);
        if (stem.size() > n &&
            stem.compare(stem.size() - n, n, ext) == 0) {
            stem.erase(stem.size() - n);
            break;
        }
    }
    if (multi)
        stem += "." + pf_name;
    return stem;
}

/** Tag @p base per prefetcher on multi-prefetcher runs (the idiom the
 *  interval CSV uses: stem.<pf>.ext). */
std::string
taggedPath(const std::string &base, const std::string &pf_name,
           bool multi)
{
    if (!multi)
        return base;
    const std::size_t dot = base.rfind('.');
    if (dot == std::string::npos)
        return base + "." + pf_name;
    return base.substr(0, dot) + "." + pf_name + base.substr(dot);
}

/** Per-prefetcher path for --trace-events. */
std::string
traceEventsPath(const Options &options, const std::string &pf_name,
                bool multi)
{
    return taggedPath(options.trace_events, pf_name, multi);
}

/** Per-prefetcher path for --learn-out. */
std::string
learnOutPath(const Options &options, const std::string &pf_name,
             bool multi)
{
    return taggedPath(options.learn_out, pf_name, multi);
}

/** Per-prefetcher path for --mem-out. */
std::string
memOutPath(const Options &options, const std::string &pf_name,
           bool multi)
{
    return taggedPath(options.mem_out, pf_name, multi);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto parsed = parse(argc, argv);
    if (!parsed.has_value())
        return 0;
    const Options &options = *parsed;

    if (options.list) {
        const auto &registry = workloads::Registry::builtin();
        for (const std::string suite :
             {"spec2006", "pbbs", "graph500", "hpcs", "ubench"}) {
            std::cout << suite << ":";
            for (const auto &name : registry.namesInSuite(suite))
                std::cout << ' ' << name;
            std::cout << '\n';
        }
        return 0;
    }
    if (options.describe) {
        std::cout << options.config.describe();
        return 0;
    }

    RunManifest manifest = makeRunManifest("cspsim", options.config);
    manifest.workloads = !options.load_trace.empty()
                             ? "trace:" + options.load_trace
                             : options.workload;
    manifest.prefetchers = options.prefetcher;
    manifest.scale = options.scale;
    manifest.placement =
        options.placement == runtime::Placement::Sequential ? "seq"
                                                            : "rand";
    if (options.print_manifest) {
        std::cout << manifest.toJson() << '\n';
        return 0;
    }

    if (options.sweep_workloads.empty() &&
        (!options.events_out.empty() || options.cache_max_bytes_set)) {
        fatal("--events-out / --cache-max-bytes are sweep-mode flags "
              "(use --workloads)");
    }

    // Sweep-service mode: the whole grid (or one shard of it) through
    // runSweep with both caches on by default — the flags/env knobs
    // above opt out. stdout carries the deterministic cell CSV;
    // --sweep-out carries the full artefact for cspmerge/cspdiff.
    if (!options.sweep_workloads.empty()) {
        workloads::WorkloadParams params;
        params.scale = options.scale;
        params.seed = options.seed;
        params.placement = options.placement;
        sim::SweepOptions sweep_opts;
        sweep_opts.verbose = options.verbose;
        sweep_opts.jobs = options.jobs;
        sweep_opts.use_result_cache = !options.no_result_cache &&
                                      sim::resultCacheEnabledByEnv();
        sweep_opts.use_trace_cache = !options.no_trace_cache &&
                                     sim::traceCacheEnabledByEnv();
        sweep_opts.result_cache_dir = options.result_cache_dir;
        sweep_opts.trace_cache_dir = options.trace_cache_dir;
        sweep_opts.shard_index = options.shard_index;
        sweep_opts.shard_count = options.shard_count;
        // The journal is strictly side-band: runSweep records what it
        // already computed, so results are byte-identical with events
        // on or off (enforced by test_sweep_events).
        sim::SweepEventJournal journal;
        if (!options.events_out.empty()) {
            ensureParentDir(options.events_out);
            if (!journal.open(options.events_out))
                fatal("cannot write %s", options.events_out.c_str());
            sweep_opts.journal = &journal;
        }
        const sim::SweepResult result = sim::runSweep(
            sweepWorkloadList(options.sweep_workloads),
            prefetcherList(options.prefetcher), params,
            options.config, sweep_opts);
        if (!options.sweep_out.empty()) {
            std::ostringstream doc;
            sim::writeSweepJson(doc, result);
            writeFile(options.sweep_out, doc.str());
            if (options.verbose) {
                inform("wrote sweep artefact to %s",
                       options.sweep_out.c_str());
            }
        }
        // Bound the result cache only after the sweep is done — a
        // concurrent shard may be about to hit an entry mid-sweep. The
        // trim events are the only ones allowed after sweep_end.
        const std::uint64_t cache_budget =
            options.cache_max_bytes_set ? options.cache_max_bytes
                                        : sim::cacheMaxBytesFromEnv();
        if (cache_budget != 0) {
            const std::string cache_dir =
                !options.result_cache_dir.empty()
                    ? options.result_cache_dir
                    : sim::defaultResultCacheDir();
            const sim::CacheTrimResult trim =
                sim::trimResultCache(cache_dir, cache_budget);
            if (journal.isOpen()) {
                using J = sim::SweepEventJournal;
                for (const auto &[entry, bytes] : trim.evicted) {
                    journal.emit("evict", {J::str("entry", entry),
                                           J::u64("bytes", bytes)});
                }
                journal.emit(
                    "cache_trim",
                    {J::u64("max_bytes", cache_budget),
                     J::u64("scanned_entries", trim.scanned_entries),
                     J::u64("scanned_bytes", trim.scanned_bytes),
                     J::u64("evicted_entries", trim.evicted_entries),
                     J::u64("evicted_bytes", trim.evicted_bytes)});
            }
            if (options.verbose && trim.evicted_entries != 0) {
                inform("cache trim: evicted %llu of %llu entries "
                       "(%llu of %llu bytes) to fit %llu",
                       static_cast<unsigned long long>(
                           trim.evicted_entries),
                       static_cast<unsigned long long>(
                           trim.scanned_entries),
                       static_cast<unsigned long long>(
                           trim.evicted_bytes),
                       static_cast<unsigned long long>(
                           trim.scanned_bytes),
                       static_cast<unsigned long long>(cache_budget));
            }
        }
        journal.close();
        sim::writeSweepCsv(std::cout, result);
        return 0;
    }

    const auto trace_gen_start = std::chrono::steady_clock::now();
    const trace::TraceBuffer trace = obtainTrace(options);
    manifest.trace_gen_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - trace_gen_start)
            .count();
    manifest.trace_digest = hexDigest(trace.contentDigest());
    manifest.trace_records = trace.size();
    manifest.trace_instructions = trace.instructions();
    manifest.trace_accesses = trace.memAccesses();
    if (options.verbose) {
        inform("trace: %llu instructions, %llu memory accesses",
               static_cast<unsigned long long>(trace.instructions()),
               static_cast<unsigned long long>(trace.memAccesses()));
    }
    if (!options.save_trace.empty()) {
        ensureParentDir(options.save_trace);
        if (!trace::saveTraceFile(trace, options.save_trace))
            fatal("cannot write %s", options.save_trace.c_str());
        inform("saved %zu records to %s", trace.size(),
               options.save_trace.c_str());
        return 0;
    }

    const std::vector<std::string> pf_names =
        prefetcherList(options.prefetcher);
    const bool multi = pf_names.size() > 1;

    // Simulate every requested prefetcher first — independent runs
    // over the shared read-only trace, spread across --jobs worker
    // threads — then emit all output serially in lineup order, so the
    // table, JSON and CSV files are byte-identical for any job count.
    struct PfOutcome
    {
        sim::RunStats stats;
        stats::Report report;
        stats::TimeSeries series;
        /// Lifecycle results, kept past the worker for serial autopsy
        /// output; null when neither --autopsy-out nor --trace-events
        /// was given.
        std::unique_ptr<obs::PrefetchTracker> tracker;
        /// Phase wall-clock attribution; null unless --profile.
        std::unique_ptr<prof::Profiler> profiler;
        /// Learning-dynamics recorder, kept past the worker for the
        /// serial learn.json write; null unless --learn-out.
        std::unique_ptr<obs::LearningRecorder> learner;
        /// Memory-hierarchy recorder, kept past the worker for the
        /// serial mem.json write; null unless --mem-out.
        std::unique_ptr<obs::MemRecorder> memrec;
    };
    const bool observing = !options.autopsy_out.empty() ||
                           !options.trace_events.empty() ||
                           !options.learn_out.empty() ||
                           !options.mem_out.empty();
    std::vector<PfOutcome> outcomes(pf_names.size());
    if (options.profile) {
        // Trace generation is shared by every prefetcher's run, so
        // each profile carries the full trace-gen cost.
        const auto trace_gen_ns = static_cast<std::uint64_t>(
            manifest.trace_gen_seconds * 1e9);
        for (auto &outcome : outcomes) {
            outcome.profiler = std::make_unique<prof::Profiler>();
            outcome.profiler->add(prof::Phase::TraceGen, trace_gen_ns);
        }
    }
    const auto sim_start = std::chrono::steady_clock::now();
    {
        ThreadPool pool(options.jobs);
        manifest.jobs = pool.threads();
        sim::SweepProgress progress(
            options.workload.empty() ? "cspsim" : options.workload,
            std::vector<std::uint64_t>(pf_names.size(),
                                       trace.instructions()),
            pool.threads());
        for (std::size_t i = 0; i < pf_names.size(); ++i) {
            pool.submit([&, i] {
                auto prefetcher =
                    sim::makePrefetcher(pf_names[i], options.config);
                sim::Simulator simulator(options.config);
                simulator.setReportFilter(options.stats_filter);
                if (options.stats_interval != 0) {
                    simulator.setSampling(options.stats_interval,
                                          options.stats_filter);
                }
                // Single-prefetcher runs get a Heartbeat that also
                // shows the live learning state when the context
                // prefetcher is active; multi-prefetcher runs fold
                // into the aggregate SweepProgress line.
                std::unique_ptr<sim::Heartbeat> heartbeat;
                if (options.verbose && !multi) {
                    heartbeat = std::make_unique<sim::Heartbeat>(
                        (options.workload.empty() ? "cspsim"
                                                  : options.workload) +
                            "/" + pf_names[i],
                        trace.instructions());
                    if (const auto *ctx = dynamic_cast<
                            const prefetch::ctx::ContextPrefetcher *>(
                            prefetcher.get())) {
                        heartbeat->setStatus([ctx] {
                            char buf[64];
                            std::snprintf(
                                buf, sizeof(buf),
                                "acc %.3f, eps %.3f",
                                ctx->policy().accuracy(),
                                ctx->policy().epsilon());
                            return std::string(buf);
                        });
                    }
                    simulator.setProgress(heartbeat->hook());
                } else if (options.verbose) {
                    simulator.setProgress(progress.hook(i));
                }
                if (outcomes[i].profiler != nullptr)
                    simulator.setProfiler(outcomes[i].profiler.get());
                // The timeline file is written live during the run (one
                // per prefetcher — workers never share a stream); the
                // autopsy tracker survives for serial output below.
                std::ofstream events_file;
                std::unique_ptr<obs::TraceEventWriter> events;
                std::unique_ptr<obs::RlEventTap> rl_tap;
                obs::RunObserver observer;
                if (!options.trace_events.empty()) {
                    const std::string path = traceEventsPath(
                        options, pf_names[i], multi);
                    ensureParentDir(path);
                    events_file.open(path);
                    if (!events_file)
                        fatal("cannot write %s", path.c_str());
                    events = std::make_unique<obs::TraceEventWriter>(
                        events_file);
                    rl_tap = std::make_unique<obs::RlEventTap>(
                        events.get(), options.trace_sample);
                    observer.rl = rl_tap.get();
                }
                if (!options.learn_out.empty()) {
                    obs::LearningRecorder::Options learn_opts;
                    // Auto cadence: ~32 snapshots per run. Lookup
                    // counts, not wall-clock, so the snapshot series
                    // is identical for any --jobs.
                    learn_opts.snapshot_every =
                        options.learn_snapshot_every != 0
                            ? options.learn_snapshot_every
                            : std::max<std::uint64_t>(
                                  1, trace.memAccesses() / 32);
                    outcomes[i].learner =
                        std::make_unique<obs::LearningRecorder>(
                            learn_opts, events.get());
                    observer.learn = outcomes[i].learner.get();
                }
                if (!options.mem_out.empty()) {
                    obs::MemRecorder::Options mem_opts;
                    // Auto cadence: ~64 queue-depth samples per run.
                    // Demand-access counts, not wall-clock, so the
                    // timeline is identical for any --jobs.
                    mem_opts.queue_sample_every =
                        options.mem_interval != 0
                            ? options.mem_interval
                            : std::max<std::uint64_t>(
                                  1, trace.memAccesses() / 64);
                    outcomes[i].memrec =
                        std::make_unique<obs::MemRecorder>(
                            options.config.memory, mem_opts,
                            events.get());
                    observer.mem = outcomes[i].memrec.get();
                }
                if (observing) {
                    outcomes[i].tracker =
                        std::make_unique<obs::PrefetchTracker>(
                            events.get(), options.trace_sample);
                    observer.tracker = outcomes[i].tracker.get();
                    simulator.setObserver(&observer);
                }
                outcomes[i].stats = simulator.run(trace, *prefetcher);
                outcomes[i].report = simulator.lastReport();
                outcomes[i].series = simulator.lastSeries();
                if (events != nullptr)
                    events->close();
                if (options.verbose)
                    progress.cellDone(i);
            });
        }
        pool.wait();
    }
    manifest.sim_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sim_start)
            .count();
    if (manifest.sim_seconds > 0.0) {
        manifest.insts_per_sec =
            static_cast<double>(trace.instructions()) *
            static_cast<double>(pf_names.size()) / manifest.sim_seconds;
    }

    // Full Figure-9 benefit breakdown plus wrong prefetches, all
    // sourced from the stats registry via RunStats.
    sim::Table table({"prefetcher", "IPC", "speedup", "L1-MPKI",
                      "L2-MPKI", "pf-issued", "pf-never-hit",
                      "hit-pf%", "shorter%", "non-timely%",
                      "miss-unpf%", "hit-dem%"});
    double baseline_ipc = 0.0;
    std::ostringstream stats_json;
    for (std::size_t i = 0; i < pf_names.size(); ++i) {
        const std::string &pf_name = pf_names[i];
        const sim::RunStats &stats = outcomes[i].stats;
        if (options.json) {
            std::cout << "{\"prefetcher\":\"" << pf_name
                      << "\",\"stats\":" << stats.toJson() << "}\n";
        }
        if (!options.stats_out.empty()) {
            if (multi) {
                stats_json << (stats_json.tellp() == 0 ? "{" : ",")
                           << '"' << pf_name << "\":";
            }
            stats_json << outcomes[i].report.toJson();
        }
        if (options.stats_interval != 0) {
            const std::string path =
                intervalCsvPath(options, pf_name, multi);
            ensureParentDir(path);
            std::ofstream csv(path);
            if (!csv)
                fatal("cannot write %s", path.c_str());
            manifest.writeCsvComment(csv);
            outcomes[i].series.writeCsv(csv);
            if (options.verbose)
                inform("wrote interval stats to %s", path.c_str());
        }
        if (!options.autopsy_out.empty()) {
            const std::string stem =
                autopsyStem(options.autopsy_out, pf_name, multi);
            const obs::PrefetchTracker &tracker = *outcomes[i].tracker;
            ensureParentDir(stem + ".csv");
            std::ofstream autopsy_csv(stem + ".csv");
            if (!autopsy_csv)
                fatal("cannot write %s.csv", stem.c_str());
            tracker.writeAutopsyCsv(autopsy_csv, pf_name);
            std::ofstream autopsy_json(stem + ".json");
            if (!autopsy_json)
                fatal("cannot write %s.json", stem.c_str());
            tracker.writeAutopsyJson(autopsy_json, pf_name);
            if (options.verbose) {
                inform("wrote autopsy tables to %s.{csv,json}",
                       stem.c_str());
            }
        }
        if (!options.learn_out.empty()) {
            const std::string path =
                learnOutPath(options, pf_name, multi);
            ensureParentDir(path);
            std::ofstream learn_file(path);
            if (!learn_file)
                fatal("cannot write %s", path.c_str());
            outcomes[i].learner->writeLearnJson(
                learn_file, manifest.toJson(), pf_name);
            if (options.verbose)
                inform("wrote learning snapshots to %s", path.c_str());
        }
        if (!options.mem_out.empty()) {
            const std::string path =
                memOutPath(options, pf_name, multi);
            ensureParentDir(path);
            std::ofstream mem_file(path);
            if (!mem_file)
                fatal("cannot write %s", path.c_str());
            outcomes[i].memrec->writeMemJson(
                mem_file, manifest.toJson(), pf_name);
            if (options.verbose)
                inform("wrote memory observatory to %s", path.c_str());
        }
        if (baseline_ipc == 0.0) {
            // First row is the reference (it is "none" for "all").
            baseline_ipc = stats.ipc();
        }
        const auto pct = [&stats](sim::AccessClass cls) {
            return sim::Table::num(
                100.0 * stats.classFraction(cls), 1);
        };
        table.addRow(
            {pf_name, sim::Table::num(stats.ipc(), 3),
             sim::Table::num(stats.ipc() / baseline_ipc, 3),
             sim::Table::num(stats.l1Mpki(), 1),
             sim::Table::num(stats.l2Mpki(), 2),
             std::to_string(stats.hierarchy.prefetches_issued),
             std::to_string(stats.prefetch_never_hit),
             pct(sim::AccessClass::HitPrefetchedLine),
             pct(sim::AccessClass::ShorterWait),
             pct(sim::AccessClass::NonTimely),
             pct(sim::AccessClass::MissNotPrefetched),
             pct(sim::AccessClass::HitOlderDemand)});
    }
    if (!options.stats_out.empty()) {
        if (multi)
            stats_json << '}';
        // Every stats file leads with its provenance so any two runs
        // can be compared (or rejected as incomparable) by cspdiff.
        std::ostringstream doc;
        doc << "{\"manifest\":" << manifest.toJson()
            << ",\"stats\":" << stats_json.str() << "}\n";
        writeFile(options.stats_out, doc.str());
        if (options.verbose)
            inform("wrote stats to %s", options.stats_out.c_str());
    }
    if (options.profile) {
        for (std::size_t i = 0; i < pf_names.size(); ++i) {
            const prof::Profiler &profile = *outcomes[i].profiler;
            for (std::size_t p = 0;
                 p < static_cast<std::size_t>(prof::Phase::Count);
                 ++p) {
                const auto phase = static_cast<prof::Phase>(p);
                if (profile.calls(phase) == 0)
                    continue;
                inform("profile %-10s %-16s %10.2f ms %12llu calls",
                       pf_names[i].c_str(), prof::phaseStatName(phase),
                       static_cast<double>(profile.ns(phase)) / 1e6,
                       static_cast<unsigned long long>(
                           profile.calls(phase)));
            }
        }
    }
    if (options.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}
