/**
 * @file
 * csptop — watch or post-mortem a sweep through its csp-events-v1
 * journal (cspsim --events-out). Default mode prints one status
 * snapshot (per-worker current cell, progress, ETA, cache hit rate);
 * --follow re-reads the journal on an interval and redraws until
 * sweep_end; --summary renders the post-hoc report (exact per-cell
 * percentiles, warm-path read/parse attribution, stragglers,
 * per-worker utilisation). Works on single-shard journals and on
 * cspmerge --events-out merged journals alike.
 *
 * Every timestamp in the output comes from the journal bytes, never
 * from the clock, so for a finished journal csptop is deterministic —
 * which is what lets tests golden the summary.
 *
 * Exit codes:
 *   0  report rendered (follow mode: sweep_end observed)
 *   3  usage or file/format error
 *
 * Examples:
 *   csptop results/sweep.events.jsonl
 *   csptop results/sweep.events.jsonl --follow
 *   csptop merged.events.jsonl --summary --stragglers 16
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "diff/sweep_report.h"

namespace {

void
usage()
{
    std::cout <<
        "usage: csptop JOURNAL [options]\n"
        "  JOURNAL          csp-events-v1 JSONL file from\n"
        "                   cspsim --events-out (or a merged journal\n"
        "                   from cspmerge --events-out)\n"
        "  --summary        post-hoc report: percentiles, warm-path\n"
        "                   attribution, stragglers, workers\n"
        "  --follow         re-read and redraw the status snapshot\n"
        "                   until the journal has a sweep_end\n"
        "  --interval-ms N  follow-mode poll interval (default 500)\n"
        "  --stragglers N   straggler rows in --summary (default 8)\n"
        "  --report FILE    also write the output to FILE (parent\n"
        "                   directories are created)\n";
}

/** Parse the journal at @p path; tolerate a torn final line in follow
 *  mode by retrying without it (the writer appends whole lines
 *  atomically, but a reader can still race the kernel buffer). */
bool
loadJournal(const std::string &path, bool tolerate_tail,
            csp::diff::SweepJournal &out, std::string &error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = "cannot read " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    if (csp::diff::parseJournal(text, out, &error))
        return true;
    if (!tolerate_tail)
        return false;
    const std::size_t cut = text.find_last_of('\n');
    if (cut == std::string::npos)
        return false;
    text.resize(cut + 1);
    return csp::diff::parseJournal(text, out, &error);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string journal_path;
    std::string report_path;
    bool summary = false;
    bool follow = false;
    unsigned interval_ms = 500;
    csp::diff::SweepReportOptions options;

    const auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::cerr << "csptop: missing value for " << argv[i]
                      << "\n";
            std::exit(3);
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--summary") {
            summary = true;
        } else if (arg == "--follow") {
            follow = true;
        } else if (arg == "--interval-ms") {
            interval_ms = static_cast<unsigned>(
                std::strtoul(need_value(i), nullptr, 10));
        } else if (arg == "--stragglers") {
            options.max_stragglers =
                std::strtoull(need_value(i), nullptr, 10);
        } else if (arg == "--report") {
            report_path = need_value(i);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "csptop: unknown option " << arg
                      << " (try --help)\n";
            return 3;
        } else if (journal_path.empty()) {
            journal_path = arg;
        } else {
            std::cerr << "csptop: too many positional arguments\n";
            return 3;
        }
    }
    if (journal_path.empty()) {
        usage();
        return 3;
    }
    if (summary && follow) {
        std::cerr << "csptop: --summary and --follow are exclusive\n";
        return 3;
    }

    if (follow) {
        for (;;) {
            csp::diff::SweepJournal journal;
            std::string error;
            if (!loadJournal(journal_path, /*tolerate_tail=*/true,
                             journal, error)) {
                std::cerr << "csptop: " << error << "\n";
                return 3;
            }
            std::ostringstream status;
            if (!csp::diff::renderSweepStatus(journal, status,
                                              &error)) {
                // The writer may not have flushed sweep_start yet;
                // keep polling rather than failing a race.
                std::cout << "csptop: waiting for sweep_start ("
                          << error << ")\n";
            } else {
                std::cout << status.str();
            }
            if (journal.last("sweep_end") != nullptr)
                return 0;
            std::cout.flush();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(interval_ms));
            std::cout << "\n";
        }
    }

    csp::diff::SweepJournal journal;
    std::string error;
    if (!loadJournal(journal_path, /*tolerate_tail=*/false, journal,
                     error)) {
        std::cerr << "csptop: " << error << "\n";
        return 3;
    }
    std::ostringstream report;
    const bool ok =
        summary ? csp::diff::renderSweepSummary(journal, report,
                                                &error, options)
                : csp::diff::renderSweepStatus(journal, report,
                                               &error);
    if (!ok) {
        std::cerr << "csptop: " << journal_path << ": " << error
                  << "\n";
        return 3;
    }
    std::cout << report.str();

    if (!report_path.empty()) {
        const std::filesystem::path parent =
            std::filesystem::path(report_path).parent_path();
        std::error_code ec;
        if (!parent.empty())
            std::filesystem::create_directories(parent, ec);
        std::ofstream out(report_path);
        if (!out) {
            std::cerr << "csptop: cannot write " << report_path
                      << "\n";
            return 3;
        }
        out << report.str();
    }
    return 0;
}
